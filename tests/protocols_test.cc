// Per-protocol specification tests: g tables against the paper's Eq. 1/2 and
// the classical definitions; closed-form aggregate adoption vs the generic
// Eq. 4 sum (property sweep over p); Proposition 3 compliance.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "core/protocol.h"
#include "protocols/custom.h"
#include "protocols/majority.h"
#include "protocols/minority.h"
#include "protocols/perturbed.h"
#include "protocols/three_majority.h"
#include "protocols/two_choice.h"
#include "protocols/voter.h"
#include "random/rng.h"

namespace bitspread {
namespace {

constexpr std::uint64_t kN = 1000;

TEST(Voter, GIsLinearInCount) {
  const VoterDynamics voter(4);
  const std::uint32_t ell = voter.sample_size(kN);
  ASSERT_EQ(ell, 4u);
  for (std::uint32_t k = 0; k <= ell; ++k) {
    EXPECT_DOUBLE_EQ(voter.g(Opinion::kZero, k, ell, kN), k / 4.0);
    EXPECT_DOUBLE_EQ(voter.g(Opinion::kOne, k, ell, kN), k / 4.0);
  }
}

TEST(Voter, IsObliviousAndCompliant) {
  const VoterDynamics voter;
  EXPECT_TRUE(voter.is_oblivious(kN));
  EXPECT_TRUE(voter.maintains_consensus(kN));
}

TEST(Minority, GMatchesEq2OddSampleSize) {
  const MinorityDynamics minority(5);
  const std::uint32_t ell = 5;
  // k=0 -> 0; k in {1,2} strict minority of 1 -> 1; k in {3,4} -> 0; k=5 -> 1.
  const double expected[] = {0.0, 1.0, 1.0, 0.0, 0.0, 1.0};
  for (std::uint32_t k = 0; k <= ell; ++k) {
    EXPECT_DOUBLE_EQ(minority.g(Opinion::kZero, k, ell, kN), expected[k])
        << "k=" << k;
  }
}

TEST(Minority, GMatchesEq2EvenSampleSizeWithTie) {
  const MinorityDynamics minority(4);
  const std::uint32_t ell = 4;
  const double expected[] = {0.0, 1.0, 0.5, 0.0, 1.0};
  for (std::uint32_t k = 0; k <= ell; ++k) {
    EXPECT_DOUBLE_EQ(minority.g(Opinion::kOne, k, ell, kN), expected[k])
        << "k=" << k;
  }
}

TEST(Minority, UnanimityIsAdopted) {
  for (const std::uint32_t ell : {2u, 3u, 7u, 10u}) {
    const MinorityDynamics minority(ell);
    EXPECT_DOUBLE_EQ(minority.g(Opinion::kZero, 0, ell, kN), 0.0);
    EXPECT_DOUBLE_EQ(minority.g(Opinion::kZero, ell, ell, kN), 1.0);
  }
}

TEST(Minority, IsObliviousAndCompliant) {
  const MinorityDynamics minority(7);
  EXPECT_TRUE(minority.is_oblivious(kN));
  EXPECT_TRUE(minority.maintains_consensus(kN));
}

TEST(Majority, KeepOwnTieBreak) {
  const MajorityDynamics majority(4, MajorityDynamics::TieBreak::kKeepOwn);
  EXPECT_DOUBLE_EQ(majority.g(Opinion::kZero, 2, 4, kN), 0.0);
  EXPECT_DOUBLE_EQ(majority.g(Opinion::kOne, 2, 4, kN), 1.0);
  EXPECT_DOUBLE_EQ(majority.g(Opinion::kZero, 3, 4, kN), 1.0);
  EXPECT_DOUBLE_EQ(majority.g(Opinion::kOne, 1, 4, kN), 0.0);
  EXPECT_FALSE(majority.is_oblivious(kN));
  EXPECT_TRUE(majority.maintains_consensus(kN));
}

TEST(Majority, RandomTieBreakIsOblivious) {
  const MajorityDynamics majority(4, MajorityDynamics::TieBreak::kRandom);
  EXPECT_DOUBLE_EQ(majority.g(Opinion::kZero, 2, 4, kN), 0.5);
  EXPECT_TRUE(majority.is_oblivious(kN));
}

TEST(ThreeMajority, MatchesMajorityOfThree) {
  const ThreeMajorityDynamics three;
  EXPECT_EQ(three.sample_size(kN), 3u);
  EXPECT_DOUBLE_EQ(three.g(Opinion::kZero, 0, 3, kN), 0.0);
  EXPECT_DOUBLE_EQ(three.g(Opinion::kZero, 1, 3, kN), 0.0);
  EXPECT_DOUBLE_EQ(three.g(Opinion::kZero, 2, 3, kN), 1.0);
  EXPECT_DOUBLE_EQ(three.g(Opinion::kZero, 3, 3, kN), 1.0);
  EXPECT_TRUE(three.maintains_consensus(kN));
}

TEST(TwoChoice, KeepsOwnOnDisagreement) {
  const TwoChoiceDynamics two;
  EXPECT_DOUBLE_EQ(two.g(Opinion::kZero, 1, 2, kN), 0.0);
  EXPECT_DOUBLE_EQ(two.g(Opinion::kOne, 1, 2, kN), 1.0);
  EXPECT_DOUBLE_EQ(two.g(Opinion::kZero, 2, 2, kN), 1.0);
  EXPECT_DOUBLE_EQ(two.g(Opinion::kOne, 0, 2, kN), 0.0);
  EXPECT_TRUE(two.maintains_consensus(kN));
}

TEST(Custom, TablesAreReturnedVerbatim) {
  const CustomProtocol custom({0.0, 0.25, 0.5}, {0.1, 0.75, 1.0}, "tbl");
  EXPECT_EQ(custom.ell(), 2u);
  EXPECT_EQ(custom.sample_size(kN), 2u);
  EXPECT_DOUBLE_EQ(custom.g(Opinion::kZero, 1, 2, kN), 0.25);
  EXPECT_DOUBLE_EQ(custom.g(Opinion::kOne, 0, 2, kN), 0.1);
  EXPECT_EQ(custom.name(), "tbl");
  EXPECT_FALSE(custom.is_oblivious(kN));
}

TEST(Custom, ObliviousConstructor) {
  const CustomProtocol custom({0.0, 0.5, 1.0}, "sym");
  EXPECT_TRUE(custom.is_oblivious(kN));
}

TEST(RandomProtocol, ForcedProposition3) {
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const CustomProtocol proto = random_protocol(rng, 5);
    EXPECT_TRUE(proto.maintains_consensus(kN));
  }
}

TEST(RandomProtocol, UnforcedUsuallyViolates) {
  Rng rng(2);
  int violations = 0;
  for (int i = 0; i < 20; ++i) {
    const CustomProtocol proto = random_protocol(rng, 5, false);
    if (!proto.maintains_consensus(kN)) ++violations;
  }
  EXPECT_GT(violations, 15);
}

TEST(Perturbed, MixesTowardFlipBias) {
  const VoterDynamics voter(2);
  const PerturbedProtocol noisy(voter, 0.2, 0.5);
  // g' = 0.8 * k/2 + 0.2 * 0.5.
  EXPECT_DOUBLE_EQ(noisy.g(Opinion::kZero, 0, 2, kN), 0.1);
  EXPECT_DOUBLE_EQ(noisy.g(Opinion::kZero, 2, 2, kN), 0.9);
  EXPECT_FALSE(noisy.maintains_consensus(kN));
}

TEST(Perturbed, ZeroEpsilonIsIdentity) {
  const MinorityDynamics minority(3);
  const PerturbedProtocol clean(minority, 0.0);
  for (std::uint32_t k = 0; k <= 3; ++k) {
    EXPECT_DOUBLE_EQ(clean.g(Opinion::kZero, k, 3, kN),
                     minority.g(Opinion::kZero, k, 3, kN));
  }
  EXPECT_TRUE(clean.maintains_consensus(kN));
}

// Regression: out-of-range parameters must clamp to [0, 1] and — the bug —
// NaN must not slip through std::clamp (NaN comparisons are false, so clamp
// returns NaN unchanged) and poison every g-value.
TEST(Perturbed, OutOfRangeAndNaNParametersAreSanitized) {
  const VoterDynamics voter(2);
  const double nan = std::numeric_limits<double>::quiet_NaN();

  const PerturbedProtocol over(voter, 2.0, -1.0);  // eps -> 1, bias -> 0.
  EXPECT_DOUBLE_EQ(over.g(Opinion::kZero, 2, 2, kN), 0.0);
  const PerturbedProtocol under(voter, -0.5, 1.5);  // eps -> 0: identity.
  EXPECT_DOUBLE_EQ(under.g(Opinion::kZero, 1, 2, kN),
                   voter.g(Opinion::kZero, 1, 2, kN));

  const PerturbedProtocol nan_eps(voter, nan, 0.7);  // NaN eps -> 0.
  for (std::uint32_t k = 0; k <= 2; ++k) {
    const double value = nan_eps.g(Opinion::kOne, k, 2, kN);
    EXPECT_FALSE(std::isnan(value));
    EXPECT_DOUBLE_EQ(value, voter.g(Opinion::kOne, k, 2, kN));
  }
  const PerturbedProtocol nan_bias(voter, 0.2, nan);  // NaN bias -> 0.5.
  const double value = nan_bias.g(Opinion::kZero, 0, 2, kN);
  EXPECT_FALSE(std::isnan(value));
  EXPECT_DOUBLE_EQ(value, 0.2 * 0.5);
  EXPECT_FALSE(std::isnan(nan_bias.aggregate_adoption(Opinion::kZero, 0.3,
                                                      kN)));
}

// Property sweep: every closed-form aggregate_adoption override must agree
// with the generic Eq. 4 sum on a grid of p, for both own opinions.
class AggregateClosedFormTest
    : public ::testing::TestWithParam<const MemorylessProtocol*> {};

TEST_P(AggregateClosedFormTest, MatchesEq4Sum) {
  const MemorylessProtocol& protocol = *GetParam();
  for (int i = 0; i <= 100; ++i) {
    const double p = i / 100.0;
    for (const Opinion own : {Opinion::kZero, Opinion::kOne}) {
      const double closed = protocol.aggregate_adoption(own, p, kN);
      const double generic = eq4_adoption_sum(protocol, own, p, kN);
      EXPECT_NEAR(closed, generic, 1e-10)
          << protocol.name() << " p=" << p << " own=" << to_int(own);
    }
  }
}

const VoterDynamics kVoter1(1);
const VoterDynamics kVoter5(5);
const MinorityDynamics kMinority3(3);
const MinorityDynamics kMinority4(4);
const MinorityDynamics kMinority11(11);
const ThreeMajorityDynamics kThreeMajority;
const TwoChoiceDynamics kTwoChoice;

INSTANTIATE_TEST_SUITE_P(ClosedForms, AggregateClosedFormTest,
                         ::testing::Values(&kVoter1, &kVoter5, &kMinority3,
                                           &kMinority4, &kMinority11,
                                           &kThreeMajority, &kTwoChoice));

// Property sweep: for every protocol, g stays in [0,1] and aggregate adoption
// is consistent at the endpoints (p=0 -> g(0), p=1 -> g(l)).
class ProtocolRangeTest
    : public ::testing::TestWithParam<const MemorylessProtocol*> {};

TEST_P(ProtocolRangeTest, GInUnitIntervalAndEndpointsConsistent) {
  const MemorylessProtocol& protocol = *GetParam();
  const std::uint32_t ell = protocol.sample_size(kN);
  for (std::uint32_t k = 0; k <= ell; ++k) {
    for (const Opinion own : {Opinion::kZero, Opinion::kOne}) {
      const double g = protocol.g(own, k, ell, kN);
      EXPECT_GE(g, 0.0);
      EXPECT_LE(g, 1.0);
    }
  }
  for (const Opinion own : {Opinion::kZero, Opinion::kOne}) {
    EXPECT_DOUBLE_EQ(protocol.aggregate_adoption(own, 0.0, kN),
                     protocol.g(own, 0, ell, kN));
    EXPECT_DOUBLE_EQ(protocol.aggregate_adoption(own, 1.0, kN),
                     protocol.g(own, ell, ell, kN));
  }
}

const MajorityDynamics kMajority5(5, MajorityDynamics::TieBreak::kKeepOwn);
const MajorityDynamics kMajority6(6, MajorityDynamics::TieBreak::kRandom);

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolRangeTest,
                         ::testing::Values(&kVoter1, &kVoter5, &kMinority3,
                                           &kMinority4, &kMinority11,
                                           &kThreeMajority, &kTwoChoice,
                                           &kMajority5, &kMajority6));

TEST(AggregateAdoption, LargeSampleSizeRegimeIsStable) {
  // Minority with l = sqrt(n ln n): the generic closed form must stay in
  // [0,1] and be monotone-sane across p.
  const MinorityDynamics minority(SampleSizePolicy::sqrt_n_log_n());
  const std::uint64_t n = 1 << 16;
  const std::uint32_t ell = minority.sample_size(n);
  ASSERT_GT(ell, 500u);
  for (int i = 0; i <= 50; ++i) {
    const double p = i / 50.0;
    const double q = minority.aggregate_adoption(Opinion::kZero, p, n);
    EXPECT_GE(q, 0.0);
    EXPECT_LE(q, 1.0);
  }
  // Around p slightly below 1/2, the majority is 0 so minority adopts 1:
  // adoption should exceed 1/2... and symmetric above. Spot-check extremes.
  EXPECT_LT(minority.aggregate_adoption(Opinion::kZero, 0.995, n), 0.1);
  EXPECT_GT(minority.aggregate_adoption(Opinion::kZero, 0.45, n), 0.9);
}

TEST(Eq4Sum, MinoritySqrtRegimeMatchesGenericReference) {
  // The minority closed form (binomial tail) against the generic Eq. 4 walk
  // in the large-l regime.
  const MinorityDynamics minority(SampleSizePolicy::sqrt_n_log_n());
  const std::uint64_t n = 1 << 14;
  for (const double p : {0.05, 0.3, 0.5, 0.7, 0.95}) {
    EXPECT_NEAR(minority.aggregate_adoption(Opinion::kZero, p, n),
                eq4_adoption_sum(minority, Opinion::kZero, p, n), 1e-9)
        << "p=" << p;
  }
}

}  // namespace
}  // namespace bitspread
