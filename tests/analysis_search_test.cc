// The adversarial protocol search and its (validated) exact scoring.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/search.h"
#include "protocols/custom.h"
#include "protocols/minority.h"
#include "protocols/voter.h"

namespace bitspread {
namespace {

TEST(WorstCaseScore, VoterScoresFiniteAndSane) {
  const VoterDynamics voter(3);
  const double score = worst_case_expected_rounds(voter, 16);
  EXPECT_TRUE(std::isfinite(score));
  EXPECT_GT(score, 5.0);
  EXPECT_LT(score, 1000.0);
}

TEST(WorstCaseScore, GrowsWithN) {
  const VoterDynamics voter(3);
  EXPECT_GT(worst_case_expected_rounds(voter, 32),
            worst_case_expected_rounds(voter, 16));
}

TEST(WorstCaseScore, TrapProtocolScoresHuge) {
  // Minority(3)'s interior trap makes the worst-case expected time explode;
  // the validated solve either returns the (large) truth or infinity —
  // never a small artifact.
  const MinorityDynamics minority(3);
  const double score = worst_case_expected_rounds(minority, 20);
  EXPECT_GT(score, 10000.0);
}

TEST(WorstCaseScore, IllConditionedSolveIsRejectedNotTrusted) {
  // The degenerate "never adopt 1 unless unanimous" table makes the z = 1
  // chain nearly reducible; before residual validation the solver returned
  // garbage like E[T] ~ 3 rounds. It must now score infinity (or a huge
  // verified value), never a small number.
  const CustomProtocol degenerate({0.0, 0.0, 0.0, 0.0}, {0.0, 0.0, 0.0, 1.0},
                                  "degenerate");
  const double score = worst_case_expected_rounds(degenerate, 16);
  EXPECT_TRUE(score > 1e6 || std::isinf(score)) << score;
}

TEST(ProtocolSearch, FindsCompliantFiniteScoreProtocol) {
  Rng rng(42);
  const ProtocolSearchResult result =
      search_fastest_protocol(3, 14, /*candidates=*/120, /*climb_steps=*/60,
                              rng);
  EXPECT_TRUE(std::isfinite(result.score));
  EXPECT_EQ(result.candidates_evaluated, 180);
  const CustomProtocol champion = result.protocol();
  EXPECT_TRUE(champion.maintains_consensus(14));
  EXPECT_DOUBLE_EQ(result.g_zero[0], 0.0);
  EXPECT_DOUBLE_EQ(result.g_one[3], 1.0);
  // The reported score is reproducible from the tables.
  EXPECT_NEAR(worst_case_expected_rounds(champion, 14), result.score,
              1e-9 * result.score);
}

TEST(ProtocolSearch, HillClimbingNeverWorsensTheScore) {
  Rng rng_a(7), rng_b(7);
  const auto random_only =
      search_fastest_protocol(3, 14, 100, /*climb_steps=*/0, rng_a);
  const auto with_climb =
      search_fastest_protocol(3, 14, 100, /*climb_steps=*/100, rng_b);
  EXPECT_LE(with_climb.score, random_only.score);
}

TEST(ProtocolSearch, DeterministicGivenSeed) {
  Rng a(9), b(9);
  const auto r1 = search_fastest_protocol(3, 12, 50, 30, a);
  const auto r2 = search_fastest_protocol(3, 12, 50, 30, b);
  EXPECT_EQ(r1.g_zero, r2.g_zero);
  EXPECT_EQ(r1.g_one, r2.g_one);
  EXPECT_DOUBLE_EQ(r1.score, r2.score);
}

}  // namespace
}  // namespace bitspread
