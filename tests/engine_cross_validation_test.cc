// Distribution-identity cross-checks between the three representations of
// the same dynamics: the aggregate engine, the agent-level engine, and the
// exact dense Markov chain. These tests are the empirical backbone of the
// aggregate-chain reduction (DESIGN.md §3).
#include <gtest/gtest.h>

#include <vector>

#include "core/stateful.h"
#include "engine/agent.h"
#include "engine/aggregate.h"
#include "engine/alpha_sync.h"
#include "engine/conflicting.h"
#include "engine/sharded.h"
#include "faults/environment.h"
#include "markov/absorption.h"
#include "markov/dense_chain.h"
#include "protocols/minority.h"
#include "protocols/three_majority.h"
#include "protocols/voter.h"
#include "stats/ks.h"
#include "stats/summary.h"

namespace bitspread {
namespace {

// One-step distribution of the aggregate engine against the exact chain row,
// by chi-square.
TEST(CrossValidation, AggregateStepMatchesExactChainRow) {
  const MinorityDynamics minority(3);
  const std::uint64_t n = 30;
  const std::uint64_t x0 = 12;
  const DenseParallelChain chain(minority, n, Opinion::kOne);
  const std::vector<double> expected = chain.transition_row(x0);

  const AggregateParallelEngine engine(minority);
  Rng rng(1);
  const int kTrials = 40000;
  std::vector<std::uint64_t> counts(chain.state_count(), 0);
  for (int i = 0; i < kTrials; ++i) {
    const Configuration next =
        engine.step(Configuration{n, x0, Opinion::kOne}, rng);
    ++counts[next.ones - chain.min_state()];
  }
  int dof = 0;
  const double stat = chi_square_statistic(counts, expected, kTrials, &dof);
  EXPECT_GT(chi_square_p_value(stat, dof), 1e-4)
      << "stat=" << stat << " dof=" << dof;
}

// One-step distribution of the AGENT engine against the exact chain row.
TEST(CrossValidation, AgentStepMatchesExactChainRow) {
  const ThreeMajorityDynamics three;
  const std::uint64_t n = 24;
  const std::uint64_t x0 = 10;
  const DenseParallelChain chain(three, n, Opinion::kZero);
  const std::vector<double> expected = chain.transition_row(x0);

  const MemorylessAsStateful adapter(three);
  const AgentParallelEngine engine(adapter);
  Rng rng(2);
  const int kTrials = 30000;
  std::vector<std::uint64_t> counts(chain.state_count(), 0);
  for (int i = 0; i < kTrials; ++i) {
    auto population =
        engine.make_population(Configuration{n, x0, Opinion::kZero});
    engine.step(population, rng);
    ++counts[population.count_ones() - chain.min_state()];
  }
  int dof = 0;
  const double stat = chi_square_statistic(counts, expected, kTrials, &dof);
  EXPECT_GT(chi_square_p_value(stat, dof), 1e-4)
      << "stat=" << stat << " dof=" << dof;
}

// Full-trajectory comparison: convergence-time samples from the two engines
// are drawn from the same law (KS test).
TEST(CrossValidation, ConvergenceTimeLawsAgreeAcrossEngines) {
  // Voter converges from any start in O(n log n) rounds, so every replicate
  // finishes. (Minority with constant l would stall at its interior fixed
  // point — the Theorem 1 phenomenon — and censor the comparison.)
  const VoterDynamics voter;
  const std::uint64_t n = 30;
  StopRule rule;
  rule.max_rounds = 1000000;

  const AggregateParallelEngine aggregate(voter);
  const MemorylessAsStateful adapter(voter);
  const AgentParallelEngine agent(adapter);

  const int kTrials = 400;
  std::vector<double> agg_times, agent_times;
  for (int i = 0; i < kTrials; ++i) {
    Rng rng_a(10000 + i), rng_b(20000 + i);
    const RunResult a =
        aggregate.run(Configuration{n, 10, Opinion::kOne}, rule, rng_a);
    const RunResult b =
        agent.run(Configuration{n, 10, Opinion::kOne}, rule, rng_b);
    ASSERT_TRUE(a.converged());
    ASSERT_TRUE(b.converged());
    agg_times.push_back(static_cast<double>(a.rounds()));
    agent_times.push_back(static_cast<double>(b.rounds()));
  }
  const double d = ks_statistic(agg_times, agent_times);
  EXPECT_GT(ks_p_value(d, agg_times.size(), agent_times.size()), 1e-3)
      << "KS=" << d;
}

// One-step distribution of the SHARDED agent engine against the exact chain
// row: the packed-plane + g-table fast path samples the same law.
TEST(CrossValidation, ShardedStepMatchesExactChainRow) {
  const MinorityDynamics minority(3);
  const std::uint64_t n = 30;
  const std::uint64_t x0 = 12;
  const DenseParallelChain chain(minority, n, Opinion::kOne);
  const std::vector<double> expected = chain.transition_row(x0);

  const ShardedAgentEngine engine(minority, {.threads = 2});
  const int kTrials = 40000;
  std::vector<std::uint64_t> counts(chain.state_count(), 0);
  for (int i = 0; i < kTrials; ++i) {
    auto population =
        engine.make_population(Configuration{n, x0, Opinion::kOne});
    engine.step(population, 0, SeedSequence(7000 + i));
    ++counts[population.count_ones() - chain.min_state()];
  }
  int dof = 0;
  const double stat = chi_square_statistic(counts, expected, kTrials, &dof);
  EXPECT_GT(chi_square_p_value(stat, dof), 1e-4)
      << "stat=" << stat << " dof=" << dof;
}

// Convergence-time laws agree between the sharded engine and the aggregate
// engine (the memory-less reduction it cross-validates at scale).
TEST(CrossValidation, ShardedAndAggregateConvergenceLawsAgree) {
  const VoterDynamics voter;
  const std::uint64_t n = 30;
  StopRule rule;
  rule.max_rounds = 1000000;

  const AggregateParallelEngine aggregate(voter);
  const ShardedAgentEngine sharded(voter, {.threads = 2});

  const int kTrials = 400;
  std::vector<double> agg_times, sharded_times;
  for (int i = 0; i < kTrials; ++i) {
    Rng rng_a(60000 + i);
    const RunResult a =
        aggregate.run(Configuration{n, 10, Opinion::kOne}, rule, rng_a);
    const RunResult b =
        sharded.run(Configuration{n, 10, Opinion::kOne}, rule,
                    70000 + static_cast<std::uint64_t>(i));
    ASSERT_TRUE(a.converged());
    ASSERT_TRUE(b.converged());
    agg_times.push_back(static_cast<double>(a.rounds()));
    sharded_times.push_back(static_cast<double>(b.rounds()));
  }
  const double d = ks_statistic(agg_times, sharded_times);
  EXPECT_GT(ks_p_value(d, agg_times.size(), sharded_times.size()), 1e-3)
      << "KS=" << d;
}

// Without-replacement boundary: l = n = 100 draws see the whole population
// — beyond the old rejection sampler's l <= 64 cap, and the exact point
// where rejection degenerated. Floyd's method handles it in O(l).
TEST(CrossValidation, WithoutReplacementFullSampleBoundary) {
  const MinorityDynamics minority(100);
  const MemorylessAsStateful adapter(minority);
  const AgentParallelEngine engine(
      adapter, AgentParallelEngine::Sampling::kWithoutReplacement);
  Rng rng(9);
  const std::uint64_t n = 100;
  auto population =
      engine.make_population(Configuration{n, 40, Opinion::kOne});
  engine.step(population, rng);
  EXPECT_EQ(population.views.size(), n);
  EXPECT_TRUE(population.config().valid());
}

// Mean convergence time of the aggregate engine against the exact expected
// absorption time from the dense chain.
TEST(CrossValidation, MeanConvergenceMatchesExactAbsorptionTime) {
  const MinorityDynamics minority(3);
  const std::uint64_t n = 20;
  const std::uint64_t x0 = 8;
  const DenseParallelChain chain(minority, n, Opinion::kOne);
  const double exact =
      expected_convergence_rounds(chain)[x0 - chain.min_state()];

  const AggregateParallelEngine engine(minority);
  StopRule rule;
  rule.max_rounds = 1000000;
  RunningStats stats;
  const int kTrials = 4000;
  for (int i = 0; i < kTrials; ++i) {
    Rng rng(30000 + i);
    const RunResult result =
        engine.run(Configuration{n, x0, Opinion::kOne}, rule, rng);
    ASSERT_TRUE(result.converged());
    stats.add(static_cast<double>(result.rounds()));
  }
  EXPECT_NEAR(stats.mean(), exact, 5.0 * stats.stderr_mean())
      << "exact=" << exact;
}

// The alpha-synchronous scheduler at alpha = 1 IS the parallel setting:
// convergence-time laws match the aggregate engine's (KS). Not bit-identity —
// the alpha engine spends two extra activation binomials per round — so the
// comparison is distributional.
TEST(CrossValidation, AlphaOneMatchesAggregateConvergenceLaw) {
  const VoterDynamics voter;
  const std::uint64_t n = 30;
  StopRule rule;
  rule.max_rounds = 1000000;

  const AggregateParallelEngine aggregate(voter);
  const AlphaSynchronousEngine alpha(voter, 1.0);

  const int kTrials = 400;
  std::vector<double> agg_times, alpha_times;
  for (int i = 0; i < kTrials; ++i) {
    Rng rng_a(80000 + i), rng_b(90000 + i);
    const RunResult a =
        aggregate.run(Configuration{n, 10, Opinion::kOne}, rule, rng_a);
    const RunResult b =
        alpha.run(Configuration{n, 10, Opinion::kOne}, rule, rng_b);
    ASSERT_TRUE(a.converged());
    ASSERT_TRUE(b.converged());
    EXPECT_EQ(b.unit, TimeUnit::kAlphaRounds);
    agg_times.push_back(a.parallel_rounds());
    alpha_times.push_back(b.parallel_rounds());
  }
  const double d = ks_statistic(agg_times, alpha_times);
  EXPECT_GT(ks_p_value(d, agg_times.size(), alpha_times.size()), 1e-3)
      << "KS=" << d;
}

// Same identity through the faulty code path: at alpha = 1 the noisy
// closed-form adoption plus source flips produce the same re-convergence law
// as the aggregate engine's faulty run.
TEST(CrossValidation, AlphaOneMatchesAggregateUnderFaults) {
  const VoterDynamics voter;
  const std::uint64_t n = 30;
  StopRule rule;
  rule.max_rounds = 1000000;
  EnvironmentModel model;
  model.observation_noise = 0.02;
  model.convergence_quorum = 0.9;
  model.source_flip_rounds = {3};

  const AggregateParallelEngine aggregate(voter);
  const AlphaSynchronousEngine alpha(voter, 1.0);

  const int kTrials = 400;
  std::vector<double> agg_times, alpha_times;
  for (int i = 0; i < kTrials; ++i) {
    Rng rng_a(100000 + i), rng_b(110000 + i);
    const RunResult a = aggregate.run(Configuration{n, 10, Opinion::kOne},
                                      rule, model, rng_a);
    const RunResult b =
        alpha.run(Configuration{n, 10, Opinion::kOne}, rule, model, rng_b);
    ASSERT_TRUE(a.converged());
    ASSERT_TRUE(b.converged());
    ASSERT_EQ(a.recoveries.size(), 2u);
    ASSERT_EQ(b.recoveries.size(), 2u);
    agg_times.push_back(a.parallel_rounds());
    alpha_times.push_back(b.parallel_rounds());
  }
  const double d = ks_statistic(agg_times, alpha_times);
  EXPECT_GT(ks_p_value(d, agg_times.size(), alpha_times.size()), 1e-3)
      << "KS=" << d;
}

// A single stubborn camp IS the standard single-source model: the
// conflicting engine's zealot reduction must then be the identity, i.e.
// bit-for-bit the plain aggregate run with the same seed.
TEST(CrossValidation, ConflictingSingleCampIsBitIdenticalToStandardRun) {
  const MinorityDynamics minority(3);
  const ConflictingAggregateEngine conflicting(minority);
  const AggregateParallelEngine aggregate(minority);
  StopRule rule;
  rule.max_rounds = 5000;

  for (int i = 0; i < 50; ++i) {
    Rng rng_a(120000 + i), rng_b(120000 + i);
    const ConflictingConfiguration config{40, 12, 1, 0};
    const RunResult a = conflicting.run(config, rule, rng_a);
    const RunResult b =
        aggregate.run(Configuration{40, 12, Opinion::kOne, 1}, rule, rng_b);
    EXPECT_EQ(a.reason, b.reason);
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.final_config.ones, b.final_config.ones);
  }
}

// The same reduction identity through the fault channels: with noise and a
// source-flip schedule on top, a single-camp conflicting run is bit-identical
// to the standard faulty aggregate run.
TEST(CrossValidation, ConflictingSingleCampBitIdenticalUnderFaults) {
  const VoterDynamics voter;
  const ConflictingAggregateEngine conflicting(voter);
  const AggregateParallelEngine aggregate(voter);
  StopRule rule;
  rule.max_rounds = 5000;
  EnvironmentModel model;
  model.observation_noise = 0.05;
  model.convergence_quorum = 0.9;
  model.source_flip_rounds = {4};

  for (int i = 0; i < 50; ++i) {
    Rng rng_a(130000 + i), rng_b(130000 + i);
    const ConflictingConfiguration config{40, 12, 1, 0};
    const RunResult a = conflicting.run(config, rule, model, rng_a);
    const RunResult b = aggregate.run(Configuration{40, 12, Opinion::kOne, 1},
                                      rule, model, rng_b);
    EXPECT_EQ(a.reason, b.reason);
    EXPECT_EQ(a.ticks, b.ticks);
    EXPECT_EQ(a.final_config.ones, b.final_config.ones);
    EXPECT_EQ(a.recoveries, b.recoveries);
  }
}

}  // namespace
}  // namespace bitspread
