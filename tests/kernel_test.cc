// The bitslice step kernel (engine/kernel/): backend resolution and env
// overrides, the boolean g-circuit classifier, lane-RNG invariants, the
// kernel/2 golden digest matrix (scalar backend), scalar-vs-SIMD digest
// equality, and kernel-vs-legacy distribution cross-validation — the
// contract that lets the kernel replace the per-agent loop without a
// bit-identity tie to the legacy "kernel/1" stream schedule.
#include <gtest/gtest.h>

#include <cstdint>
#include <iomanip>
#include <vector>

#include "core/init.h"
#include "engine/kernel/kernel.h"
#include "engine/sharded.h"
#include "faults/environment.h"
#include "faults/session.h"
#include "markov/dense_chain.h"
#include "protocols/minority.h"
#include "protocols/three_majority.h"
#include "protocols/voter.h"
#include "random/lanes.h"
#include "stats/ks.h"

namespace bitspread {
namespace {

using kernel::Backend;

// ---------------------------------------------------------------------------
// Digest plumbing. The fold and traversal order are part of the golden
// contract below: change them and every pinned value must be regenerated.

std::uint64_t fold(std::uint64_t h, std::uint64_t v) noexcept {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 12) + (h >> 3);
  return h * 0x2545f4914f6cdd1dull;
}

std::uint64_t population_digest(const ShardedAgentEngine::Population& pop) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  std::uint64_t word = 0;
  for (std::uint64_t i = 0; i < pop.size(); ++i) {
    word |= static_cast<std::uint64_t>(to_int(pop.opinion(i))) << (i & 63);
    if ((i & 63) == 63) {
      h = fold(h, word);
      word = 0;
    }
  }
  if ((pop.size() & 63) != 0) h = fold(h, word);
  return fold(h, pop.count_ones());
}

EnvironmentModel digest_fault_model() {
  EnvironmentModel model;
  model.observation_noise = 0.02;
  model.spontaneous_rate = 0.01;
  model.spontaneous_bias = 0.3;
  model.churn_rate = 0.005;
  model.zealot_fraction = 0.05;
  return model;
}

// Folds population_digest over `rounds` steps from init_half(n). The faulty
// variant plants zealots and threads a FaultSession through every step.
std::uint64_t run_digest(const MemorylessProtocol& protocol, Backend backend,
                         ShardedAgentEngine::Sampling sampling,
                         std::uint64_t n, bool faulty,
                         std::uint64_t rounds = 10, std::uint64_t seed = 99) {
  ShardedEngineOptions options;
  options.threads = 1;
  options.sampling = sampling;
  options.kernel = backend;
  const ShardedAgentEngine engine(protocol, options);
  const SeedSequence seeds(seed);
  const Configuration init = init_half(n, Opinion::kOne);
  std::uint64_t h = 0xcbf29ce484222325ull;
  if (!faulty) {
    auto pop = engine.make_population(init);
    for (std::uint64_t t = 0; t < rounds; ++t) {
      engine.step(pop, t, seeds);
      h = fold(h, population_digest(pop));
    }
    return h;
  }
  const FaultSession session(digest_fault_model(), init);
  auto pop = engine.make_population(session.plant(init));
  for (std::uint64_t t = 0; t < rounds; ++t) {
    engine.step(pop, t, seeds, session);
    h = fold(h, population_digest(pop));
  }
  return h;
}

// ---------------------------------------------------------------------------
// Backend resolution.

TEST(KernelResolve, ExplicitRequestsIgnoreEnvKernel) {
  // The env var replaces kAuto only; pinned backends keep what they asked
  // for (digest tests and bench rows depend on this).
  EXPECT_EQ(kernel::resolve_with(Backend::kLegacy, "scalar", false),
            Backend::kLegacy);
  EXPECT_EQ(kernel::resolve_with(Backend::kScalarWord, "legacy", false),
            Backend::kScalarWord);
  EXPECT_EQ(kernel::resolve_with(Backend::kAuto, "legacy", false),
            Backend::kLegacy);
  EXPECT_EQ(kernel::resolve_with(Backend::kAuto, "scalar", false),
            Backend::kScalarWord);
}

TEST(KernelResolve, UnknownEnvValueBehavesAsAuto) {
  const Backend from_typo =
      kernel::resolve_with(Backend::kAuto, "avx512", false);
  const Backend from_unset =
      kernel::resolve_with(Backend::kAuto, nullptr, false);
  EXPECT_EQ(from_typo, from_unset);
  EXPECT_NE(from_typo, Backend::kLegacy);  // auto never means the legacy loop
}

TEST(KernelResolve, ForceScalarDemotesSimdIncludingExplicitRequests) {
  EXPECT_EQ(kernel::resolve_with(Backend::kAvx2, nullptr, true),
            Backend::kScalarWord);
  EXPECT_EQ(kernel::resolve_with(Backend::kNeon, nullptr, true),
            Backend::kScalarWord);
  EXPECT_EQ(kernel::resolve_with(Backend::kAuto, "avx2", true),
            Backend::kScalarWord);
  // ...but never touches the non-SIMD backends.
  EXPECT_EQ(kernel::resolve_with(Backend::kLegacy, nullptr, true),
            Backend::kLegacy);
  EXPECT_EQ(kernel::resolve_with(Backend::kScalarWord, nullptr, true),
            Backend::kScalarWord);
}

TEST(KernelResolve, ResolvedBackendsAlwaysHaveABlockFn) {
  // Whatever the host ISA, a resolved non-legacy backend must dispatch.
  for (const Backend requested :
       {Backend::kAuto, Backend::kScalarWord, Backend::kAvx2,
        Backend::kNeon}) {
    const Backend resolved = kernel::resolve_with(requested, nullptr, false);
    EXPECT_NE(resolved, Backend::kAuto);
    EXPECT_NE(kernel::block_fn(resolved), nullptr)
        << kernel::backend_name(requested);
  }
}

TEST(KernelResolve, AvailableBackendsEndWithScalarWord) {
  const auto backends = kernel::available_backends();
  ASSERT_FALSE(backends.empty());
  EXPECT_EQ(backends.back(), Backend::kScalarWord);
  for (const Backend b : backends) {
    EXPECT_NE(kernel::block_fn(b), nullptr) << kernel::backend_name(b);
  }
}

TEST(KernelResolve, BackendNamesAreStable) {
  // Bench rows and the CI kernel matrix grep on these strings.
  EXPECT_STREQ(kernel::backend_name(Backend::kLegacy), "legacy");
  EXPECT_STREQ(kernel::backend_name(Backend::kScalarWord), "scalar");
  EXPECT_STREQ(kernel::backend_name(Backend::kAvx2), "avx2");
  EXPECT_STREQ(kernel::backend_name(Backend::kNeon), "neon");
}

// ---------------------------------------------------------------------------
// Circuit classification.

TEST(KernelCircuit, ClassifiesMinorityStyleTables) {
  // l=4 minority: g = [0,1,1/2,0,1] for both own values.
  const double g[2][5] = {{0, 1, 0.5, 0, 1}, {0, 1, 0.5, 0, 1}};
  kernel::CircuitTable table;
  ASSERT_TRUE(table.classify(&g[0][0], 4));
  EXPECT_EQ(table.ones_ks[0], (std::vector<std::uint32_t>{1, 4}));
  EXPECT_EQ(table.half_ks[0], (std::vector<std::uint32_t>{2}));
  EXPECT_TRUE(table.any_half);
  EXPECT_FALSE(table.own_dependent);
}

TEST(KernelCircuit, DetectsOwnDependence) {
  // Own-dependent boolean rule: adopt 1 only when unanimous, except agents
  // already at 1 keep it on an empty count too.
  const double g[2][3] = {{0, 0, 1}, {1, 0, 1}};
  kernel::CircuitTable table;
  ASSERT_TRUE(table.classify(&g[0][0], 2));
  EXPECT_TRUE(table.own_dependent);
  EXPECT_FALSE(table.any_half);
}

TEST(KernelCircuit, RejectsFractionalTables) {
  // Voter at l=3: g = k/3 is not {0, 1/2, 1}-valued, so the boolean circuit
  // cannot express it and the engine must take the legacy loop.
  const double g[2][4] = {{0, 1.0 / 3, 2.0 / 3, 1},
                          {0, 1.0 / 3, 2.0 / 3, 1}};
  kernel::CircuitTable table;
  EXPECT_FALSE(table.classify(&g[0][0], 3));
}

// ---------------------------------------------------------------------------
// Lane RNG invariants.

TEST(KernelLanes, FillRowMatchesPerLaneNext) {
  LaneRng a(0x1234567890abcdefull);
  LaneRng b(0x1234567890abcdefull);
  for (int row = 0; row < 16; ++row) {
    std::uint64_t out[LaneRng::kLanes];
    a.fill_row(out);
    for (unsigned lane = 0; lane < LaneRng::kLanes; ++lane) {
      EXPECT_EQ(out[lane], b.next(lane)) << "row " << row << " lane " << lane;
    }
  }
}

TEST(KernelLanes, LanesAndAuxSeedDifferAcrossMasters) {
  LaneRng a(1);
  LaneRng b(2);
  EXPECT_NE(a.aux_seed(), b.aux_seed());
  for (unsigned lane = 0; lane < LaneRng::kLanes; ++lane) {
    EXPECT_NE(a.next(lane), b.next(lane)) << "lane " << lane;
  }
}

TEST(KernelLanes, LaneViewDrawsFromTheParentStream) {
  LaneRng a(9);
  LaneRng b(9);
  auto view = a.lane_view(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(view.next_below(1000), b.next_below(3, 1000));
  }
}

TEST(KernelLanes, Lemire32ThresholdIsExact) {
  for (const std::uint64_t n : {1ull, 2ull, 3ull, 97ull, 4096ull, 100003ull,
                                2147483647ull, 4294967295ull}) {
    EXPECT_EQ(lemire32_threshold(n),
              static_cast<std::uint32_t>(((1ull << 32) - n) % n))
        << n;
  }
  EXPECT_EQ(lemire32_threshold(1u << 16), 0u);  // powers of two never reject
}

TEST(KernelLanes, IndexRowsAreInRangeAndUniform) {
  // 16 indices per row; after the Lemire rejection step every slot must be
  // uniform on [0, n). n=6 is far from a divisor of 2^32, so the rejection
  // path runs constantly.
  const std::uint32_t n = 6;
  LaneRng lanes(777);
  const std::uint32_t threshold = lemire32_threshold(n);
  std::vector<std::uint64_t> counts(n, 0);
  const int kRows = 30000;
  for (int r = 0; r < kRows; ++r) {
    std::uint32_t idx[16];
    fill_index_row(lanes, n, threshold, idx);
    for (const std::uint32_t i : idx) {
      ASSERT_LT(i, n);
      ++counts[i];
    }
  }
  const std::vector<double> uniform(n, 1.0 / n);
  int dof = 0;
  const double stat =
      chi_square_statistic(counts, uniform, 16ull * kRows, &dof);
  EXPECT_GT(chi_square_p_value(stat, dof), 1e-4) << "stat=" << stat;
}

// ---------------------------------------------------------------------------
// Golden digest matrix (kernel/2 schedule, scalar backend). The l values
// cross the single-word boundary (64, 65); 65 exercises Floyd sampling with
// l > 64 in without-replacement mode; n = 12345 spans four blocks with a
// partial last word and is far from a power of two, so the 32-bit Lemire
// rejection path runs. Voter rows with l in {3,5,17,64,65} have fractional
// g and therefore pin the legacy-fallback digest instead — also part of the
// contract (voter l=2 has g in {0,1/2,1} and rides the kernel, collapsing
// onto the same circuit as minority l=2).
//
// Regenerate by re-running this test: each failing row prints its computed
// value. Scalar and SIMD backends must agree on every row (asserted
// separately below), so the pinned values are backend-independent.

struct GoldenRow {
  std::uint32_t ell;
  bool distinct;
  std::uint64_t minority;
  std::uint64_t voter;
};

constexpr std::uint64_t kGoldenN = 12345;

constexpr GoldenRow kGoldenRows[] = {
    {1, false, 0x484e2efa2d2cfcb4ull, 0x484e2efa2d2cfcb4ull},
    {1, true, 0xdc7e50920247b3dcull, 0xdc7e50920247b3dcull},
    {2, false, 0xa729eab25867fd1full, 0xa729eab25867fd1full},
    {2, true, 0x9a6f0075c13340dcull, 0x9a6f0075c13340dcull},
    {3, false, 0x698369d6c7f56470ull, 0x0435fc617563bd8aull},
    {3, true, 0x3b40873bf6d37a4dull, 0x9bbefa12f868ab3dull},
    {5, false, 0x2312e5e0bd7620b0ull, 0x4a213ca622349571ull},
    {5, true, 0x9d48acd637718c18ull, 0xf5dc6bc7706ba059ull},
    {17, false, 0x1b7aeff15aad1526ull, 0x039c2bce361d4cb5ull},
    {17, true, 0x8c16c8992fc4fed1ull, 0x3411564e4db8e0d7ull},
    {64, false, 0x31c5741c16f2f1a6ull, 0x95cfd4b339491a11ull},
    {64, true, 0x25ca34189f107f3full, 0x9e07dfa4fadc0fa4ull},
    {65, false, 0x2eaa1ee92fdad75aull, 0x7c4bba3b6978b764ull},
    {65, true, 0x198db1da3ff4f3f5ull, 0xd8476d6459da9a76ull},
};

// The faulty path pins its own stream schedule (kernel/2 fault phase):
// minority l=3 under noise + spontaneous flips + churn + zealots.
constexpr std::uint64_t kGoldenFaultyWithReplacement = 0x56b37223908de90cull;
constexpr std::uint64_t kGoldenFaultyDistinct = 0x4be7fad5ab2784afull;

ShardedAgentEngine::Sampling sampling_for(bool distinct) {
  return distinct ? ShardedAgentEngine::Sampling::kWithoutReplacement
                  : ShardedAgentEngine::Sampling::kWithReplacement;
}

TEST(KernelGolden, ScalarDigestMatrixMatchesPinnedValues) {
  for (const GoldenRow& row : kGoldenRows) {
    const MinorityDynamics minority(row.ell);
    const VoterDynamics voter(row.ell);
    const auto sampling = sampling_for(row.distinct);
    const std::uint64_t got_minority = run_digest(
        minority, Backend::kScalarWord, sampling, kGoldenN, false);
    const std::uint64_t got_voter =
        run_digest(voter, Backend::kScalarWord, sampling, kGoldenN, false);
    EXPECT_EQ(got_minority, row.minority)
        << "minority l=" << row.ell << " distinct=" << row.distinct
        << " computed 0x" << std::hex << std::setw(16) << std::setfill('0')
        << got_minority;
    EXPECT_EQ(got_voter, row.voter)
        << "voter l=" << row.ell << " distinct=" << row.distinct
        << " computed 0x" << std::hex << std::setw(16) << std::setfill('0')
        << got_voter;
  }
}

TEST(KernelGolden, ScalarFaultyDigestsMatchPinnedValues) {
  const MinorityDynamics minority(3);
  EXPECT_EQ(run_digest(minority, Backend::kScalarWord, sampling_for(false),
                       kGoldenN, true),
            kGoldenFaultyWithReplacement);
  EXPECT_EQ(run_digest(minority, Backend::kScalarWord, sampling_for(true),
                       kGoldenN, true),
            kGoldenFaultyDistinct);
}

TEST(KernelGolden, SimdBackendsMatchScalarOnTheFullMatrix) {
  // The cross-backend contract: on whatever ISA the CI host has, every
  // available backend reproduces the scalar digest bit-for-bit, faulty rows
  // included. (On a host without AVX2/NEON this degenerates to scalar ==
  // scalar; the CI kernel matrix job runs it on both sides.)
  for (const Backend backend : kernel::available_backends()) {
    if (backend == Backend::kScalarWord) continue;
    for (const GoldenRow& row : kGoldenRows) {
      const MinorityDynamics minority(row.ell);
      const VoterDynamics voter(row.ell);
      const auto sampling = sampling_for(row.distinct);
      EXPECT_EQ(
          run_digest(minority, backend, sampling, kGoldenN, false),
          row.minority)
          << kernel::backend_name(backend) << " minority l=" << row.ell
          << " distinct=" << row.distinct;
      EXPECT_EQ(run_digest(voter, backend, sampling, kGoldenN, false),
                row.voter)
          << kernel::backend_name(backend) << " voter l=" << row.ell
          << " distinct=" << row.distinct;
    }
    const MinorityDynamics minority(3);
    EXPECT_EQ(run_digest(minority, backend, sampling_for(false), kGoldenN,
                         true),
              kGoldenFaultyWithReplacement)
        << kernel::backend_name(backend);
    EXPECT_EQ(
        run_digest(minority, backend, sampling_for(true), kGoldenN, true),
        kGoldenFaultyDistinct)
        << kernel::backend_name(backend);
  }
}

TEST(KernelGolden, AutoEngagesTheKernelForEligibleRounds) {
  // kAuto must resolve onto the kernel/2 schedule (digest == pinned scalar
  // value, whatever SIMD tier auto picks) and actually leave the legacy
  // loop (digest != legacy). This is the test that catches a silently
  // disabled kernel: a fallback would still pass every equality-only check.
  const MinorityDynamics minority(3);
  const auto sampling = sampling_for(false);
  const std::uint64_t via_auto =
      run_digest(minority, Backend::kAuto, sampling, kGoldenN, false);
  const std::uint64_t via_legacy =
      run_digest(minority, Backend::kLegacy, sampling, kGoldenN, false);
  EXPECT_EQ(via_auto, 0x698369d6c7f56470ull);
  EXPECT_NE(via_auto, via_legacy);
}

TEST(KernelGolden, StepBackendReportsDispatchDecision) {
  const MinorityDynamics minority(3);
  const VoterDynamics voter(3);
  const ShardedAgentEngine eligible(minority, {.threads = 1});
  const ShardedAgentEngine fractional(voter, {.threads = 1});
  const ShardedAgentEngine pinned_legacy(
      minority, {.threads = 1, .kernel = Backend::kLegacy});
  auto pop_a = eligible.make_population(init_half(1000, Opinion::kOne));
  auto pop_b = fractional.make_population(init_half(1000, Opinion::kOne));
  auto pop_c = pinned_legacy.make_population(init_half(1000, Opinion::kOne));
  EXPECT_NE(eligible.step_backend(pop_a), Backend::kLegacy);
  EXPECT_EQ(fractional.step_backend(pop_b), Backend::kLegacy);
  EXPECT_EQ(pinned_legacy.step_backend(pop_c), Backend::kLegacy);
}

TEST(KernelGolden, FractionalProtocolFallsBackToLegacyDigest) {
  // Voter l=3 is ineligible, so requesting kAuto must give exactly the
  // legacy digest — the fallback is the legacy loop itself, not a kernel
  // approximation of it.
  const VoterDynamics voter(3);
  const auto sampling = sampling_for(false);
  EXPECT_EQ(run_digest(voter, Backend::kAuto, sampling, kGoldenN, false),
            run_digest(voter, Backend::kLegacy, sampling, kGoldenN, false));
}

TEST(KernelGolden, KernelStaysBitIdenticalAcrossThreadsAndShards) {
  // The engine's headline determinism guarantee must survive the kernel
  // path: randomness is still keyed per (round, block).
  const MinorityDynamics minority(3);
  const std::uint64_t n = 3 * ShardedAgentEngine::kBlockAgents + 77;
  const SeedSequence seeds(5);
  std::uint64_t reference = 0;
  bool first = true;
  for (const auto& [threads, shards] :
       std::vector<std::pair<unsigned, std::uint32_t>>{
           {1, 0}, {2, 1}, {4, 3}, {8, 8}}) {
    ShardedEngineOptions options;
    options.threads = threads;
    options.shards = shards;
    const ShardedAgentEngine engine(minority, options);
    auto pop = engine.make_population(init_half(n, Opinion::kOne));
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::uint64_t t = 0; t < 8; ++t) {
      engine.step(pop, t, seeds);
      h = fold(h, population_digest(pop));
    }
    if (first) {
      reference = h;
      first = false;
    } else {
      EXPECT_EQ(h, reference) << threads << " threads, " << shards
                              << " shards";
    }
  }
}

// ---------------------------------------------------------------------------
// Distribution cross-validation: the kernel/2 schedule is a different
// stream of randomness, so equality is in law, not in bits. One-step
// exactness against the dense chain, run-length agreement with the legacy
// loop, and the faulty path's one-step law close the loop.

TEST(KernelCrossValidation, OneStepMatchesExactChainRow) {
  // 3-majority has g in {0,1}, so the kernel runs it; its one-step ones
  // count must follow the exact dense-chain transition row.
  const ThreeMajorityDynamics three;
  const std::uint64_t n = 24;
  const std::uint64_t x0 = 10;
  const DenseParallelChain chain(three, n, Opinion::kZero);
  const std::vector<double> expected = chain.transition_row(x0);

  const ShardedAgentEngine engine(
      three, {.threads = 1, .kernel = Backend::kScalarWord});
  const int kTrials = 30000;
  std::vector<std::uint64_t> counts(chain.state_count(), 0);
  for (int i = 0; i < kTrials; ++i) {
    auto population =
        engine.make_population(Configuration{n, x0, Opinion::kZero});
    engine.step(population, 0, SeedSequence(7000 + i));
    ++counts[population.count_ones() - chain.min_state()];
  }
  int dof = 0;
  const double stat = chi_square_statistic(counts, expected, kTrials, &dof);
  EXPECT_GT(chi_square_p_value(stat, dof), 1e-4)
      << "stat=" << stat << " dof=" << dof;
}

TEST(KernelCrossValidation, ConvergenceTimesMatchLegacyInLaw) {
  // Voter l=1 convergence times under the kernel and under the legacy loop
  // are draws from the same distribution (KS) — the kernel/1 vs kernel/2
  // schedules differ in bits but not in law.
  const VoterDynamics voter;
  const std::uint64_t n = 30;
  StopRule rule;
  rule.max_rounds = 1000000;
  const ShardedAgentEngine with_kernel(
      voter, {.threads = 1, .kernel = Backend::kAuto});
  const ShardedAgentEngine with_legacy(
      voter, {.threads = 1, .kernel = Backend::kLegacy});
  const int kTrials = 400;
  std::vector<double> kernel_times, legacy_times;
  for (int i = 0; i < kTrials; ++i) {
    const Configuration init{n, 10, Opinion::kOne};
    const RunResult a =
        with_kernel.run(init, rule, 61000 + static_cast<std::uint64_t>(i));
    const RunResult b =
        with_legacy.run(init, rule, 62000 + static_cast<std::uint64_t>(i));
    ASSERT_TRUE(a.converged());
    ASSERT_TRUE(b.converged());
    kernel_times.push_back(static_cast<double>(a.rounds()));
    legacy_times.push_back(static_cast<double>(b.rounds()));
  }
  const double d = ks_statistic(kernel_times, legacy_times);
  EXPECT_GT(ks_p_value(d, kernel_times.size(), legacy_times.size()), 1e-3)
      << "KS=" << d;
}

TEST(KernelCrossValidation, FaultyStepMatchesLegacyInLaw) {
  // Same one-round comparison with every fault channel live: the ones
  // counts after one noisy/churning/zealoted minority round, sampled across
  // seeds, must agree between kernel and legacy (KS).
  const MinorityDynamics minority(3);
  const std::uint64_t n = 600;
  const Configuration init = init_half(n, Opinion::kOne);
  const FaultSession session(digest_fault_model(), init);
  const ShardedAgentEngine with_kernel(
      minority, {.threads = 1, .kernel = Backend::kAuto});
  const ShardedAgentEngine with_legacy(
      minority, {.threads = 1, .kernel = Backend::kLegacy});
  const int kTrials = 2000;
  std::vector<double> kernel_ones, legacy_ones;
  for (int i = 0; i < kTrials; ++i) {
    auto a = with_kernel.make_population(session.plant(init));
    auto b = with_legacy.make_population(session.plant(init));
    with_kernel.step(a, 0, SeedSequence(81000 + i), session);
    with_legacy.step(b, 0, SeedSequence(82000 + i), session);
    kernel_ones.push_back(static_cast<double>(a.count_ones()));
    legacy_ones.push_back(static_cast<double>(b.count_ones()));
  }
  const double d = ks_statistic(kernel_ones, legacy_ones);
  EXPECT_GT(ks_p_value(d, kernel_ones.size(), legacy_ones.size()), 1e-3)
      << "KS=" << d;
}

}  // namespace
}  // namespace bitspread
