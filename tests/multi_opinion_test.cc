// The multi-opinion generalization (paper footnote 2): configurations,
// histogram machinery, protocols, engines, and the binary reduction.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "engine/aggregate.h"
#include "multi/configuration.h"
#include "multi/engine.h"
#include "multi/protocol.h"
#include "multi/protocols.h"
#include "protocols/minority.h"
#include "protocols/voter.h"
#include "random/multinomial.h"
#include "stats/ks.h"
#include "stats/summary.h"

namespace bitspread {
namespace {

TEST(Multinomial, CountsSumToTrials) {
  Rng rng(1);
  const std::vector<double> probs{0.2, 0.3, 0.5};
  for (int i = 0; i < 200; ++i) {
    const auto counts = multinomial(rng, 1000, probs);
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), std::uint64_t{0}),
              1000u);
  }
}

TEST(Multinomial, MeansMatch) {
  Rng rng(2);
  const std::vector<double> probs{0.1, 0.6, 0.3};
  std::vector<double> sums(3, 0.0);
  const int kTrials = 5000;
  for (int i = 0; i < kTrials; ++i) {
    const auto counts = multinomial(rng, 100, probs);
    for (int j = 0; j < 3; ++j) sums[j] += static_cast<double>(counts[j]);
  }
  for (int j = 0; j < 3; ++j) {
    EXPECT_NEAR(sums[j] / kTrials, 100.0 * probs[j], 0.5);
  }
}

TEST(Multinomial, ZeroProbabilityCategoryNeverHit) {
  Rng rng(3);
  const std::vector<double> probs{0.5, 0.0, 0.5};
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(multinomial(rng, 50, probs)[1], 0u);
  }
}

TEST(MultiConfiguration, ValidityAndAccessors) {
  MultiConfiguration config;
  config.counts = {3, 5, 2};
  config.correct = 1;
  EXPECT_TRUE(config.valid());
  EXPECT_EQ(config.n(), 10u);
  EXPECT_EQ(config.opinion_count(), 3u);
  EXPECT_EQ(config.non_source_count(1), 4u);
  EXPECT_EQ(config.non_source_count(0), 3u);
  EXPECT_FALSE(config.is_consensus());
  EXPECT_DOUBLE_EQ(config.fraction(1), 0.5);

  config.counts = {0, 10, 0};
  EXPECT_TRUE(config.is_correct_consensus());
  config.correct = 0;
  EXPECT_FALSE(config.valid());  // Source must hold `correct`.
}

TEST(MultiConfiguration, BinaryEmbedding) {
  const MultiConfiguration config = embed_binary(10, 4, 1, 3);
  EXPECT_EQ(config.counts[0], 6u);
  EXPECT_EQ(config.counts[1], 4u);
  EXPECT_EQ(config.counts[2], 0u);
  EXPECT_TRUE(config.valid());
}

TEST(HistogramEnumeration, CountsAndTotals) {
  int visits = 0;
  for_each_histogram(3, 4, [&](std::span<const std::uint32_t> histogram) {
    ++visits;
    std::uint32_t total = 0;
    for (const std::uint32_t k : histogram) total += k;
    EXPECT_EQ(total, 4u);
  });
  EXPECT_EQ(visits, 15);  // C(4+2, 2) = 15.
}

TEST(HistogramProbability, MatchesBinomialForTwoOpinions) {
  const std::vector<double> fractions{0.7, 0.3};
  const std::vector<std::uint32_t> histogram{2, 3};
  // C(5,3) 0.3^3 0.7^2 = 10 * 0.027 * 0.49.
  EXPECT_NEAR(histogram_probability(histogram, fractions),
              10.0 * 0.027 * 0.49, 1e-12);
}

TEST(HistogramProbability, SumsToOneOverAllHistograms) {
  const std::vector<double> fractions{0.2, 0.5, 0.3};
  double total = 0.0;
  for_each_histogram(3, 5, [&](std::span<const std::uint32_t> histogram) {
    total += histogram_probability(histogram, fractions);
  });
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(MultiVoter, DistributionIsSampleFrequencies) {
  const MultiVoter voter(3, 4);
  const std::vector<std::uint32_t> histogram{2, 1, 1};
  std::vector<double> out(3);
  voter.adoption_distribution(0, histogram, 4, 100, out);
  EXPECT_DOUBLE_EQ(out[0], 0.5);
  EXPECT_DOUBLE_EQ(out[1], 0.25);
  EXPECT_DOUBLE_EQ(out[2], 0.25);
  EXPECT_TRUE(voter.respects_no_spontaneous_adoption(100));
}

TEST(MultiMinority, AdoptsRarestPresentOpinion) {
  const MultiMinority minority(3, 6);
  std::vector<double> out(3);
  // 3/2/1: opinion 2 is rarest.
  minority.adoption_distribution(0, std::vector<std::uint32_t>{3, 2, 1}, 6,
                                 100, out);
  EXPECT_DOUBLE_EQ(out[2], 1.0);
  // Tie between 1 and 2 at count 1.
  minority.adoption_distribution(0, std::vector<std::uint32_t>{4, 1, 1}, 6,
                                 100, out);
  EXPECT_DOUBLE_EQ(out[1], 0.5);
  EXPECT_DOUBLE_EQ(out[2], 0.5);
  // Unanimity is adopted.
  minority.adoption_distribution(1, std::vector<std::uint32_t>{0, 6, 0}, 6,
                                 100, out);
  EXPECT_DOUBLE_EQ(out[1], 1.0);
  EXPECT_TRUE(minority.respects_no_spontaneous_adoption(100));
}

TEST(MultiAggregate, AdoptionDistributionMatchesBinaryClosedForm) {
  // With only opinions {0,1} populated, multi-minority's exact q must equal
  // the binary MinorityDynamics aggregate adoption (footnote 2's reduction).
  const std::uint32_t ell = 5;
  const MultiMinority multi(3, ell);
  const MinorityDynamics binary(ell);
  const MultiAggregateEngine engine(multi);
  for (const double p : {0.1, 0.35, 0.5, 0.8}) {
    const std::uint64_t n = 1000;
    const auto ones = static_cast<std::uint64_t>(p * n);
    const MultiConfiguration config = embed_binary(n, ones, 1, 3);
    const auto q = engine.adoption_distribution(0, config);
    EXPECT_NEAR(q[1],
                binary.aggregate_adoption(Opinion::kZero,
                                          config.fraction(1), n),
                1e-9)
        << "p=" << p;
    EXPECT_NEAR(q[2], 0.0, 1e-15);  // Never adopts the unseen opinion.
  }
}

TEST(MultiAggregate, StepPreservesPopulationAndSources) {
  const MultiMinority minority(3, 3);
  const MultiAggregateEngine engine(minority);
  Rng rng(4);
  MultiConfiguration config;
  config.counts = {40, 35, 25};
  config.correct = 2;
  config.sources = 5;
  for (int t = 0; t < 50; ++t) {
    config = engine.step(config, rng);
    ASSERT_TRUE(config.valid());
    EXPECT_EQ(config.n(), 100u);
    EXPECT_GE(config.counts[2], 5u);
  }
}

TEST(MultiAggregate, BinaryEmbeddingMatchesBinaryEngineInLaw) {
  // Convergence-time laws of the embedded binary instance under the multi
  // engine vs the plain binary engine (KS test): the reduction is exact.
  // Voter converges from any start, so no replicate stalls at an interior
  // fixed point (minority with constant l would).
  const std::uint32_t ell = 2;
  const std::uint64_t n = 60;
  const MultiVoter multi(3, ell);
  const VoterDynamics binary(ell);
  const MultiAggregateEngine multi_engine(multi);
  const AggregateParallelEngine binary_engine(binary);

  const int kTrials = 300;
  std::vector<double> multi_times, binary_times;
  StopRule multi_rule;
  multi_rule.max_rounds = 1000000;
  StopRule binary_rule;
  binary_rule.max_rounds = 1000000;
  for (int i = 0; i < kTrials; ++i) {
    Rng rng_a(5000 + i), rng_b(6000 + i);
    const MultiRunResult a =
        multi_engine.run(embed_binary(n, 20, 1, 3), multi_rule, rng_a);
    const RunResult b = binary_engine.run(Configuration{n, 20, Opinion::kOne},
                                          binary_rule, rng_b);
    ASSERT_TRUE(a.converged());
    ASSERT_TRUE(b.converged());
    multi_times.push_back(static_cast<double>(a.rounds));
    binary_times.push_back(static_cast<double>(b.rounds()));
  }
  const double d = ks_statistic(multi_times, binary_times);
  EXPECT_GT(ks_p_value(d, multi_times.size(), binary_times.size()), 1e-3)
      << "KS=" << d;
}

TEST(MultiAgent, PopulationRoundTripsConfiguration) {
  const MultiVoter voter(4);
  const MultiAgentEngine engine(voter);
  MultiConfiguration config;
  config.counts = {10, 20, 5, 15};
  config.correct = 3;
  config.sources = 2;
  const auto population = engine.make_population(config);
  EXPECT_EQ(population.opinions.size(), 50u);
  EXPECT_EQ(population.config().counts, config.counts);
  EXPECT_EQ(population.opinions[0], 3u);
}

TEST(MultiAgent, AgreesWithAggregateOnOneStepMeans) {
  const MultiMinority minority(3, 3);
  const MultiAggregateEngine aggregate(minority);
  const MultiAgentEngine agent(minority);
  MultiConfiguration config;
  config.counts = {50, 30, 20};
  config.correct = 0;
  config.sources = 1;

  const int kTrials = 800;
  std::vector<double> agg_counts(3, 0.0), agent_counts(3, 0.0);
  Rng rng_a(7), rng_b(8);
  for (int i = 0; i < kTrials; ++i) {
    const MultiConfiguration a = aggregate.step(config, rng_a);
    auto population = agent.make_population(config);
    agent.step(population, rng_b);
    const MultiConfiguration b = population.config();
    for (int j = 0; j < 3; ++j) {
      agg_counts[j] += static_cast<double>(a.counts[j]) / kTrials;
      agent_counts[j] += static_cast<double>(b.counts[j]) / kTrials;
    }
  }
  for (int j = 0; j < 3; ++j) {
    EXPECT_NEAR(agg_counts[j], agent_counts[j], 1.0) << "opinion " << j;
  }
}

TEST(MultiAgent, VoterConvergesWithThreeOpinions) {
  const MultiVoter voter(3);
  const MultiAgentEngine engine(voter);
  Rng rng(9);
  MultiConfiguration config;
  config.counts = {10, 10, 10};
  config.correct = 2;
  config.sources = 1;
  StopRule rule;
  rule.max_rounds = 1000000;
  const MultiRunResult result = engine.run(config, rule, rng);
  // Voter with a source eventually reaches the correct consensus (dual
  // argument extends to any opinion set); wrong consensus cannot absorb
  // because the source keeps displaying `correct`.
  EXPECT_TRUE(result.converged());
}

TEST(MultiAggregate, ConsensusIsAbsorbingForMinority) {
  const MultiMinority minority(3, 3);
  const MultiAggregateEngine engine(minority);
  Rng rng(10);
  MultiConfiguration config;
  config.counts = {0, 100, 0};
  config.correct = 1;
  for (int t = 0; t < 30; ++t) {
    config = engine.step(config, rng);
    EXPECT_TRUE(config.is_correct_consensus());
  }
}

}  // namespace
}  // namespace bitspread
