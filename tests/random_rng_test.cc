#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "random/rng.h"

namespace bitspread {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, KnownVector) {
  // Reference values from the public-domain splitmix64.c with seed 0.
  SplitMix64 gen(0);
  EXPECT_EQ(gen.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(gen.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(gen.next(), 0x06c45d188009454fULL);
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Xoshiro, IsDeterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, SeedsProduceDistinctStreams) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Xoshiro, NextDoubleMeanIsHalf) {
  Rng rng(4);
  double sum = 0.0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Xoshiro, NextBelowRespectsBound) {
  Rng rng(5);
  for (const std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 2000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Xoshiro, NextBelowOneIsAlwaysZero) {
  Rng rng(6);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Xoshiro, NextBelowIsApproximatelyUniform) {
  Rng rng(8);
  constexpr std::uint64_t kBound = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.next_below(kBound)];
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kDraws / 10.0, 500.0);
  }
}

TEST(Xoshiro, BernoulliEdgeCases) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Xoshiro, BernoulliFrequency) {
  Rng rng(10);
  const double p = 0.3;
  int hits = 0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.bernoulli(p);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, p, 0.01);
}

TEST(Xoshiro, NextInRange) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_in(-2.0, 3.0);
    EXPECT_GE(x, -2.0);
    EXPECT_LT(x, 3.0);
  }
}

TEST(Xoshiro, JumpDecorrelatesStreams) {
  Rng a(12);
  Rng b(12);
  b.jump();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Xoshiro, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), ~0ULL);
}

TEST(Xoshiro, BitsAreBalanced) {
  Rng rng(13);
  std::array<int, 64> bit_counts{};
  const int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    const std::uint64_t x = rng();
    for (int b = 0; b < 64; ++b) bit_counts[b] += (x >> b) & 1;
  }
  for (const int c : bit_counts) {
    EXPECT_NEAR(static_cast<double>(c), kDraws / 2.0, 4.5 * std::sqrt(kDraws / 4.0));
  }
}

}  // namespace
}  // namespace bitspread
