// The parallel replication harness and the exact worst-initial-state search.
#include <gtest/gtest.h>

#include <atomic>

#include "core/init.h"
#include "engine/aggregate.h"
#include "markov/absorption.h"
#include "markov/worst_case.h"
#include "protocols/minority.h"
#include "protocols/voter.h"
#include "sim/parallel.h"

namespace bitspread {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> visits(500);
  parallel_for(500, [&](int i) { visits[static_cast<std::size_t>(i)]++; }, 4);
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ParallelFor, ZeroAndNegativeCountsAreNoops) {
  int calls = 0;
  parallel_for(0, [&](int) { ++calls; });
  parallel_for(-3, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelFor, SingleThreadFallback) {
  std::vector<int> order;
  parallel_for(5, [&](int i) { order.push_back(i); }, 1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelMeasure, IdenticalToSerialMeasurement) {
  // Per-replicate seed streams make the measurement schedule-independent:
  // the parallel harness must reproduce the serial one bit-for-bit.
  const VoterDynamics voter;
  const AggregateParallelEngine engine(voter);
  const SeedSequence seeds(99);
  StopRule rule;
  rule.max_rounds = 100000;
  const Configuration init = init_half(64, Opinion::kOne);
  const auto runner = [&](Rng& rng) { return engine.run(init, rule, rng); };

  const ConvergenceMeasurement serial =
      measure_convergence(runner, seeds, 7, 40);
  const ConvergenceMeasurement parallel =
      measure_convergence_parallel(runner, seeds, 7, 40, 4);

  EXPECT_EQ(serial.converged, parallel.converged);
  EXPECT_EQ(serial.censored, parallel.censored);
  EXPECT_EQ(serial.round_samples, parallel.round_samples);
  EXPECT_DOUBLE_EQ(serial.rounds.mean(), parallel.rounds.mean());
  EXPECT_DOUBLE_EQ(serial.rounds_lower_bound.mean(),
                   parallel.rounds_lower_bound.mean());
}

TEST(WorstInitialState, MinorityLandscapeIsFlatTrapDominated) {
  // For minority(l=3) with z = 1 every transient start funnels into the
  // stable mixed state, so expected times are nearly identical everywhere:
  // the worst start beats the mid start by well under 1% — the escape from
  // the trap dominates, not the approach. (Contrast Voter below.)
  const MinorityDynamics minority(3);
  const DenseParallelChain chain(minority, 24, Opinion::kOne);
  const WorstInitialState worst = worst_initial_state(chain);
  const auto times = expected_convergence_rounds(chain);
  const double mid = times[12 - chain.min_state()];
  EXPECT_GT(worst.expected_rounds, 0.0);
  EXPECT_LT(worst.expected_rounds / mid, 1.01);
}

TEST(WorstInitialState, VoterWorstStartIsAllWrong) {
  // Voter has no trap: the farther from consensus, the longer — the worst
  // start is the all-wrong configuration x = 1.
  const VoterDynamics voter;
  const DenseParallelChain chain(voter, 20, Opinion::kOne);
  const WorstInitialState worst = worst_initial_state(chain);
  EXPECT_EQ(worst.state, 1u);
}

TEST(WorstInitialState, ConsensusIsNeverWorst) {
  const MinorityDynamics minority(3);
  const DenseParallelChain chain(minority, 16, Opinion::kZero);
  const WorstInitialState worst = worst_initial_state(chain);
  EXPECT_NE(worst.state, chain.correct_consensus_state());
}

}  // namespace
}  // namespace bitspread
