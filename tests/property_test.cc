// Cross-module property tests over RANDOM protocols.
//
// Theorem 1 quantifies over every g-family, so the library's analysis and
// engines must be correct for arbitrary tables, not just the named dynamics.
// Each test here draws a fresh Prop-3-compliant random protocol per
// parameterized seed and checks an invariant that ties at least two modules
// together (bias vs polynomial, chain vs drift, engine vs expectation,
// classification vs sign, mean-field vs roots, sequential vs birth-death).
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/bias.h"
#include "analysis/cases.h"
#include "analysis/mean_field.h"
#include "analysis/roots.h"
#include "analysis/theorem6.h"
#include "core/problem.h"
#include "engine/aggregate.h"
#include "engine/sequential.h"
#include "markov/birth_death.h"
#include "markov/dense_chain.h"
#include "protocols/custom.h"
#include "stats/summary.h"

namespace bitspread {
namespace {

class RandomProtocolTest : public ::testing::TestWithParam<int> {
 protected:
  // A fresh compliant protocol with l in {2..6}, deterministic per seed.
  CustomProtocol make_protocol() const {
    Rng rng(0xab5eed + static_cast<std::uint64_t>(GetParam()) * 7919);
    const auto ell = static_cast<std::uint32_t>(2 + rng.next_below(5));
    return random_protocol(rng, ell);
  }
};

TEST_P(RandomProtocolTest, BiasVanishesAtEndpointsAndMatchesPolynomial) {
  const CustomProtocol protocol = make_protocol();
  const std::uint64_t n = 5000;
  const BiasFunction bias(protocol, n);
  EXPECT_NEAR(bias(0.0), 0.0, 1e-12);
  EXPECT_NEAR(bias(1.0), 0.0, 1e-12);
  const Polynomial f = bias.to_polynomial();
  for (int i = 0; i <= 40; ++i) {
    const double p = i / 40.0;
    EXPECT_NEAR(bias(p), f(p), 1e-9) << "p=" << p;
  }
  EXPECT_LE(f.degree(), static_cast<int>(protocol.ell()) + 1);
}

TEST_P(RandomProtocolTest, ClassificationIntervalHasConstantSign) {
  const CustomProtocol protocol = make_protocol();
  const std::uint64_t n = 5000;
  const CaseAnalysis analysis = classify_bias(protocol, n);
  if (analysis.bias_case == BiasCase::kZeroBias) GTEST_SKIP();
  const BiasFunction bias(protocol, n);
  const int expected_sign =
      analysis.bias_case == BiasCase::kCase1 ? -1 : 1;
  // Probe strictly inside [a1, a3].
  for (int i = 1; i < 20; ++i) {
    const double p =
        analysis.a1 + (analysis.a3 - analysis.a1) * i / 20.0;
    const double value = bias(p);
    if (std::abs(value) < 1e-12) continue;  // Grazing a root numerically.
    EXPECT_EQ(value > 0 ? 1 : -1, expected_sign)
        << "p=" << p << " F=" << value;
  }
}

TEST_P(RandomProtocolTest, Proposition5ExactOnDenseChain) {
  const CustomProtocol protocol = make_protocol();
  const std::uint64_t n = 30;
  const BiasFunction bias(protocol, n);
  for (const Opinion z : {Opinion::kZero, Opinion::kOne}) {
    const DenseParallelChain chain(protocol, n, z);
    for (std::uint64_t x = chain.min_state(); x <= chain.max_state(); ++x) {
      const double predicted =
          static_cast<double>(x) +
          static_cast<double>(n) * bias(static_cast<double>(x) / n);
      EXPECT_NEAR(chain.row_mean(x), predicted, 1.0 + 1e-9)
          << "x=" << x << " z=" << to_int(z);
    }
  }
}

TEST_P(RandomProtocolTest, AggregateStepMeanMatchesExactExpectation) {
  const CustomProtocol protocol = make_protocol();
  const AggregateParallelEngine engine(protocol);
  const std::uint64_t n = 4000;
  Rng rng(17 + GetParam());
  const Configuration start{n, 1 + rng.next_below(n - 1), Opinion::kOne};
  const double exact = exact_next_mean(protocol, start);
  RunningStats stats;
  const int kTrials = 2500;
  for (int i = 0; i < kTrials; ++i) {
    stats.add(static_cast<double>(engine.step(start, rng).ones));
  }
  EXPECT_NEAR(stats.mean(), exact, 5.0 * stats.stderr_mean() + 1e-9);
}

TEST_P(RandomProtocolTest, MeanFieldFixedPointsAreBiasRoots) {
  const CustomProtocol protocol = make_protocol();
  const std::uint64_t n = 5000;
  const MeanFieldMap map(protocol, n);
  const BiasFunction bias(protocol, n);
  for (const FixedPoint& fp : map.fixed_points()) {
    EXPECT_NEAR(bias(fp.p), 0.0, 1e-6) << "p*=" << fp.p;
    EXPECT_NEAR(map.step(fp.p), fp.p, 1e-6);
  }
}

TEST_P(RandomProtocolTest, Theorem6DriftCheckAcceptsItsOwnClassification) {
  const CustomProtocol protocol = make_protocol();
  const std::uint64_t n = 1 << 14;
  const CaseAnalysis analysis = classify_bias(protocol, n);
  const Theorem6Report report = check_theorem6(protocol, n, analysis, 0.5);
  EXPECT_TRUE(report.drift_ok)
      << to_string(analysis.bias_case) << " " << report.describe();
}

TEST_P(RandomProtocolTest, SequentialStepMatchesBirthDeathProbabilities) {
  const CustomProtocol protocol = make_protocol();
  const std::uint64_t n = 200;
  Rng pick(23 + GetParam());
  const std::uint64_t x0 = 1 + pick.next_below(n - 1);
  const BirthDeathChain chain(protocol, n, Opinion::kOne);
  const double up = chain.up(x0);
  const double down = chain.down(x0);

  const SequentialEngine engine(protocol);
  const Configuration start{n, x0, Opinion::kOne};
  Rng rng(29 + GetParam());
  int ups = 0, downs = 0;
  const int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    const Configuration next = engine.step(start, rng);
    ups += next.ones == x0 + 1;
    downs += next.ones + 1 == x0;
  }
  const double sigma_up = std::sqrt(up * (1 - up) / kTrials);
  const double sigma_down = std::sqrt(down * (1 - down) / kTrials);
  EXPECT_NEAR(static_cast<double>(ups) / kTrials, up,
              5.0 * sigma_up + 1e-9);
  EXPECT_NEAR(static_cast<double>(downs) / kTrials, down,
              5.0 * sigma_down + 1e-9);
}

TEST_P(RandomProtocolTest, DenseChainRowsAreDistributions) {
  const CustomProtocol protocol = make_protocol();
  const std::uint64_t n = 25;
  const DenseParallelChain chain(protocol, n, Opinion::kZero);
  for (std::uint64_t x = chain.min_state(); x <= chain.max_state(); ++x) {
    const auto row = chain.transition_row(x);
    double total = 0.0;
    for (const double p : row) {
      EXPECT_GE(p, -1e-15);
      total += p;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProtocolTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace bitspread
