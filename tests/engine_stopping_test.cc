// StopRule semantics shared by every engine: interval rules fire strictly
// OUTSIDE [lo, hi] (sitting on a boundary keeps running), consensus
// detection, and the RunResult / RecoverySegment accessors around the
// degraded classification.
#include <gtest/gtest.h>

#include "engine/stopping.h"

namespace bitspread {
namespace {

Configuration mid_config(std::uint64_t ones) {
  return Configuration{30, ones, Opinion::kOne, 1};
}

TEST(StopRule, IntervalBoundariesDoNotStop) {
  StopRule rule;
  rule.interval_lo = 10;
  rule.interval_hi = 20;
  // Exactly on a boundary: still inside, keep running.
  EXPECT_EQ(evaluate_stop(rule, mid_config(10)), std::nullopt);
  EXPECT_EQ(evaluate_stop(rule, mid_config(20)), std::nullopt);
  EXPECT_EQ(evaluate_stop(rule, mid_config(15)), std::nullopt);
}

TEST(StopRule, StrictlyOutsideIntervalStops) {
  StopRule rule;
  rule.interval_lo = 10;
  rule.interval_hi = 20;
  EXPECT_EQ(evaluate_stop(rule, mid_config(9)), StopReason::kIntervalExit);
  EXPECT_EQ(evaluate_stop(rule, mid_config(21)), StopReason::kIntervalExit);
  EXPECT_EQ(evaluate_stop(rule, mid_config(2)), StopReason::kIntervalExit);
}

TEST(StopRule, OneSidedIntervals) {
  StopRule lo_only;
  lo_only.interval_lo = 5;
  EXPECT_EQ(evaluate_stop(lo_only, mid_config(5)), std::nullopt);
  EXPECT_EQ(evaluate_stop(lo_only, mid_config(4)),
            StopReason::kIntervalExit);
  EXPECT_EQ(evaluate_stop(lo_only, mid_config(29)), std::nullopt);

  StopRule hi_only;
  hi_only.interval_hi = 25;
  EXPECT_EQ(evaluate_stop(hi_only, mid_config(25)), std::nullopt);
  EXPECT_EQ(evaluate_stop(hi_only, mid_config(26)),
            StopReason::kIntervalExit);
}

TEST(StopRule, ConsensusDetection) {
  StopRule rule;
  EXPECT_EQ(evaluate_stop(rule, mid_config(30)),
            StopReason::kCorrectConsensus);
  // Wrong consensus needs every agent on the wrong opinion — impossible
  // with a source, so a sourceless configuration is used.
  const Configuration wrong{30, 0, Opinion::kOne, 0};
  EXPECT_EQ(evaluate_stop(rule, wrong), StopReason::kWrongConsensus);
  StopRule tolerant;
  tolerant.stop_on_any_consensus = false;
  EXPECT_EQ(evaluate_stop(tolerant, wrong), std::nullopt);
}

TEST(StopRule, IntervalExitWinsOverConsensus) {
  // The interval check runs first: a crossing run that lands on a consensus
  // outside the watched interval reports the crossing.
  StopRule rule;
  rule.interval_lo = 5;
  rule.interval_hi = 25;
  EXPECT_EQ(evaluate_stop(rule, mid_config(30)), StopReason::kIntervalExit);
}

TEST(StopReasonStrings, AllReasonsNamed) {
  EXPECT_EQ(to_string(StopReason::kCorrectConsensus), "correct-consensus");
  EXPECT_EQ(to_string(StopReason::kWrongConsensus), "wrong-consensus");
  EXPECT_EQ(to_string(StopReason::kRoundLimit), "round-limit");
  EXPECT_EQ(to_string(StopReason::kIntervalExit), "interval-exit");
  EXPECT_EQ(to_string(StopReason::kDegraded), "degraded");
}

TEST(RunResultAccessors, DegradedIsCensored) {
  RunResult result;
  result.reason = StopReason::kDegraded;
  EXPECT_TRUE(result.censored());
  EXPECT_TRUE(result.degraded());
  EXPECT_FALSE(result.converged());

  result.reason = StopReason::kRoundLimit;
  EXPECT_TRUE(result.censored());
  EXPECT_FALSE(result.degraded());

  result.reason = StopReason::kCorrectConsensus;
  EXPECT_FALSE(result.censored());
  EXPECT_TRUE(result.converged());
}

TEST(RunResultAccessors, LastFlipRound) {
  RunResult result;
  EXPECT_EQ(result.last_flip_round(), 0u);
  result.recoveries.push_back(RecoverySegment{0, 12, true});
  result.recoveries.push_back(RecoverySegment{40, 55, true});
  EXPECT_EQ(result.last_flip_round(), 40u);
  EXPECT_EQ(result.recoveries[1].recovery_rounds(), 15u);
}

}  // namespace
}  // namespace bitspread
