#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "random/rng.h"
#include "stats/bootstrap.h"
#include "stats/ks.h"
#include "stats/quantiles.h"
#include "stats/regression.h"
#include "stats/summary.h"

namespace bitspread {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.stderr_mean(), 0.0);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> values{1.0, 2.0, 4.0, 8.0, 16.0};
  const RunningStats stats = summarize(values);
  EXPECT_EQ(stats.count(), 5u);
  EXPECT_DOUBLE_EQ(stats.mean(), 6.2);
  // Sample variance: sum((x - 6.2)^2) / 4 = (27.04+17.64+4.84+3.24+96.04)/4.
  EXPECT_NEAR(stats.variance(), 37.2, 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 16.0);
  EXPECT_NEAR(stats.sum(), 31.0, 1e-12);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.add(3.5);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.5);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, MergeEqualsCombined) {
  Rng rng(1);
  RunningStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double() * 10.0;
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-8);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(2.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(Quantiles, MedianOfOddAndEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Quantiles, ExtremesAndInterpolation) {
  const std::vector<double> values{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(quantile(values, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(values, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.25), 20.0);
  EXPECT_DOUBLE_EQ(quantile(values, 0.125), 15.0);
}

TEST(Quantiles, EmptyGivesNaN) {
  EXPECT_TRUE(std::isnan(quantile(std::vector<double>{}, 0.5)));
}

TEST(Histogram, BinsAndClamping) {
  Histogram hist(0.0, 10.0, 5);
  hist.add(0.5);    // bin 0
  hist.add(9.5);    // bin 4
  hist.add(-3.0);   // clamped to bin 0
  hist.add(42.0);   // clamped to bin 4
  hist.add(5.0);    // bin 2
  EXPECT_EQ(hist.counts[0], 2u);
  EXPECT_EQ(hist.counts[2], 1u);
  EXPECT_EQ(hist.counts[4], 2u);
  EXPECT_EQ(hist.total(), 5u);
  EXPECT_DOUBLE_EQ(hist.fraction(0), 0.4);
}

TEST(Bootstrap, MeanCiCoversTruth) {
  Rng rng(2);
  std::vector<double> values;
  for (int i = 0; i < 400; ++i) values.push_back(rng.next_double());
  Rng boot_rng(3);
  const ConfidenceInterval ci = bootstrap_mean_ci(values, boot_rng, 800);
  EXPECT_LT(ci.lo, ci.point);
  EXPECT_GT(ci.hi, ci.point);
  EXPECT_LT(ci.lo, 0.5);
  EXPECT_GT(ci.hi, 0.5);
  EXPECT_NEAR(ci.point, 0.5, 0.05);
}

TEST(Bootstrap, EmptyInput) {
  Rng rng(4);
  const ConfidenceInterval ci =
      bootstrap_mean_ci(std::vector<double>{}, rng, 100);
  EXPECT_DOUBLE_EQ(ci.lo, 0.0);
  EXPECT_DOUBLE_EQ(ci.hi, 0.0);
}

TEST(Regression, RecoversExactLine) {
  const std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> y{3.0, 5.0, 7.0, 9.0};  // y = 2x + 1
  const LinearFit fit = ols_fit(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Regression, NoisyLineStillClose) {
  Rng rng(5);
  std::vector<double> x, y;
  for (int i = 0; i < 500; ++i) {
    const double xi = static_cast<double>(i);
    x.push_back(xi);
    y.push_back(0.5 * xi + 10.0 + (rng.next_double() - 0.5));
  }
  const LinearFit fit = ols_fit(x, y);
  EXPECT_NEAR(fit.slope, 0.5, 0.01);
  EXPECT_NEAR(fit.intercept, 10.0, 1.0);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(Regression, LogLogRecoversExponent) {
  std::vector<double> x, y;
  for (const double n : {10.0, 100.0, 1000.0, 10000.0}) {
    x.push_back(n);
    y.push_back(3.0 * std::pow(n, 1.5));  // y = 3 n^1.5
  }
  const LinearFit fit = loglog_fit(x, y);
  EXPECT_NEAR(fit.slope, 1.5, 1e-10);
  EXPECT_NEAR(std::exp(fit.intercept), 3.0, 1e-8);
}

TEST(KolmogorovSmirnov, IdenticalSamplesGiveZero) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(ks_statistic(a, a), 0.0);
}

TEST(KolmogorovSmirnov, DisjointSamplesGiveOne) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{10.0, 20.0};
  EXPECT_DOUBLE_EQ(ks_statistic(a, b), 1.0);
}

TEST(KolmogorovSmirnov, SameDistributionHighPValue) {
  Rng rng(6);
  std::vector<double> a, b;
  for (int i = 0; i < 2000; ++i) a.push_back(rng.next_double());
  for (int i = 0; i < 2000; ++i) b.push_back(rng.next_double());
  const double d = ks_statistic(a, b);
  EXPECT_GT(ks_p_value(d, a.size(), b.size()), 0.001);
}

TEST(KolmogorovSmirnov, ShiftedDistributionLowPValue) {
  Rng rng(7);
  std::vector<double> a, b;
  for (int i = 0; i < 2000; ++i) a.push_back(rng.next_double());
  for (int i = 0; i < 2000; ++i) b.push_back(rng.next_double() + 0.2);
  const double d = ks_statistic(a, b);
  EXPECT_LT(ks_p_value(d, a.size(), b.size()), 1e-6);
}

TEST(ChiSquare, PValueKnownQuantiles) {
  // Chi-square with 1 dof: P(X > 3.841) ~ 0.05.
  EXPECT_NEAR(chi_square_p_value(3.841, 1), 0.05, 0.002);
  // With 10 dof: P(X > 18.307) ~ 0.05.
  EXPECT_NEAR(chi_square_p_value(18.307, 10), 0.05, 0.002);
  EXPECT_DOUBLE_EQ(chi_square_p_value(0.0, 5), 1.0);
}

TEST(ChiSquare, UniformCountsFitUniform) {
  const std::vector<std::uint64_t> observed{105, 95, 98, 102};
  const std::vector<double> expected(4, 0.25);
  int dof = 0;
  const double stat = chi_square_statistic(observed, expected, 400, &dof);
  EXPECT_EQ(dof, 3);
  EXPECT_GT(chi_square_p_value(stat, dof), 0.5);
}

TEST(ChiSquare, PoolsSparseBins) {
  // Expected counts of 0.4 each must be pooled, not divided by.
  const std::vector<std::uint64_t> observed{100, 1, 0, 1, 0, 98};
  const std::vector<double> expected{0.5, 0.002, 0.002, 0.002, 0.002, 0.492};
  int dof = 0;
  const double stat = chi_square_statistic(observed, expected, 200, &dof);
  EXPECT_TRUE(std::isfinite(stat));
  EXPECT_GE(dof, 1);
}

}  // namespace
}  // namespace bitspread
