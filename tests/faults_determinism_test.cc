// The fault paths keep the engines' exactness and determinism contracts:
//  * the sharded engine's faulty runs are bit-identical for every thread
//    count and shard count, with the full fault model active;
//  * the agent-level operational noise (per-probe BSC bit flips) follows the
//    same law as the exact NoisyObservationProtocol closed form, checked by
//    chi-square against the dense Markov chain;
//  * the zealot geometry is distribution-identical between the agent and
//    aggregate faulty paths.
#include <gtest/gtest.h>

#include <vector>

#include "core/init.h"
#include "core/stateful.h"
#include "engine/agent.h"
#include "engine/aggregate.h"
#include "engine/sharded.h"
#include "faults/environment.h"
#include "faults/noisy_protocol.h"
#include "faults/session.h"
#include "markov/dense_chain.h"
#include "protocols/minority.h"
#include "protocols/voter.h"
#include "random/binomial.h"
#include "stats/ks.h"

namespace bitspread {
namespace {

EnvironmentModel full_fault_model() {
  EnvironmentModel model;
  model.observation_noise = 0.05;
  model.spontaneous_rate = 0.01;
  model.zealot_fraction = 0.1;
  model.churn_rate = 0.01;
  model.source_flip_rounds = {5, 11};
  model.convergence_quorum = 0.95;
  return model;
}

struct RunRecord {
  RunResult result;
  std::vector<Trajectory::Point> points;
};

RunRecord run_faulty(ShardedAgentEngine::Options options, std::uint64_t n,
                     std::uint64_t seed) {
  const VoterDynamics voter;
  const ShardedAgentEngine engine(voter, options);
  // A round cap, not convergence: bit-identity is asserted on the full
  // trajectory plus the recovery segments.
  StopRule rule;
  rule.max_rounds = 40;
  Trajectory trajectory;
  RunRecord record;
  record.result = engine.run(init_half(n, Opinion::kOne), rule,
                             full_fault_model(), seed, &trajectory);
  record.points.assign(trajectory.points().begin(),
                       trajectory.points().end());
  return record;
}

void expect_identical(const RunRecord& a, const RunRecord& b) {
  EXPECT_EQ(a.result.reason, b.result.reason);
  EXPECT_EQ(a.result.rounds(), b.result.rounds());
  EXPECT_EQ(a.result.final_config, b.result.final_config);
  EXPECT_EQ(a.result.recoveries, b.result.recoveries);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].round, b.points[i].round);
    EXPECT_EQ(a.points[i].ones, b.points[i].ones);
  }
}

TEST(FaultDeterminism, ShardedBitIdenticalAcrossThreadCounts) {
  // All five channels active at once: every fault draw must live in the
  // per-(round, block) streams, so the worker count is pure scheduling.
  const std::uint64_t n = 3 * ShardedAgentEngine::kBlockAgents + 77;
  const RunRecord one = run_faulty({.threads = 1}, n, 42);
  for (const unsigned threads : {2u, 8u}) {
    const RunRecord many = run_faulty({.threads = threads}, n, 42);
    expect_identical(one, many);
  }
}

TEST(FaultDeterminism, ShardedBitIdenticalAcrossShardCounts) {
  const std::uint64_t n = 3 * ShardedAgentEngine::kBlockAgents + 77;
  const RunRecord baseline = run_faulty({.threads = 2, .shards = 1}, n, 43);
  for (const std::uint32_t shards : {2u, 3u, 8u}) {
    const RunRecord other =
        run_faulty({.threads = 2, .shards = shards}, n, 43);
    expect_identical(baseline, other);
  }
}

TEST(FaultDeterminism, FaultySeedStreamsDifferFromFaultFree) {
  // The faulty path draws from its own stream phase: an all-zero fault
  // model reproduces the fault-free LAW, but not the same sample path.
  const std::uint64_t n = ShardedAgentEngine::kBlockAgents + 5;
  const VoterDynamics voter;
  const ShardedAgentEngine engine(voter, {.threads = 2});
  StopRule rule;
  rule.max_rounds = 50;
  const RunResult plain =
      engine.run(init_half(n, Opinion::kOne), rule, /*seed=*/7);
  const RunResult faulty = engine.run(init_half(n, Opinion::kOne), rule,
                                      EnvironmentModel{}, /*seed=*/7);
  EXPECT_NE(plain.final_config.ones, faulty.final_config.ones);
}

// Operational per-probe bit flips in the agent engine, against the exact
// dense chain of the NoisyObservationProtocol: one faulty step from x0 must
// follow the closed-form transition row.
TEST(FaultDeterminism, AgentNoisyStepMatchesExactNoisyChainRow) {
  const MinorityDynamics minority(3);
  EnvironmentModel model;
  model.observation_noise = 0.1;
  const NoisyObservationProtocol noisy(minority, model);
  const std::uint64_t n = 30;
  const std::uint64_t x0 = 12;
  const DenseParallelChain chain(noisy, n, Opinion::kOne);
  const std::vector<double> expected = chain.transition_row(x0);

  const MemorylessAsStateful adapter(minority);
  const AgentParallelEngine engine(adapter);
  StopRule rule;
  rule.max_rounds = 1;
  const int kTrials = 40000;
  std::vector<std::uint64_t> counts(chain.state_count(), 0);
  for (int i = 0; i < kTrials; ++i) {
    Rng rng(9000 + i);
    const RunResult result =
        engine.run(Configuration{n, x0, Opinion::kOne}, rule, model, rng);
    ++counts[result.final_config.ones - chain.min_state()];
  }
  int dof = 0;
  const double stat = chi_square_statistic(counts, expected, kTrials, &dof);
  EXPECT_GT(chi_square_p_value(stat, dof), 1e-4)
      << "stat=" << stat << " dof=" << dof;
}

// Same law through the sharded packed-plane fast path.
TEST(FaultDeterminism, ShardedNoisyStepMatchesExactNoisyChainRow) {
  const MinorityDynamics minority(3);
  EnvironmentModel model;
  model.observation_noise = 0.1;
  const NoisyObservationProtocol noisy(minority, model);
  const std::uint64_t n = 30;
  const std::uint64_t x0 = 12;
  const DenseParallelChain chain(noisy, n, Opinion::kOne);
  const std::vector<double> expected = chain.transition_row(x0);

  const ShardedAgentEngine engine(minority, {.threads = 2});
  const Configuration config{n, x0, Opinion::kOne};
  const FaultSession session(model, config);
  const int kTrials = 40000;
  std::vector<std::uint64_t> counts(chain.state_count(), 0);
  for (int i = 0; i < kTrials; ++i) {
    auto population = engine.make_population(config);
    engine.step(population, 0, SeedSequence(11000 + i), session);
    ++counts[population.count_ones() - chain.min_state()];
  }
  int dof = 0;
  const double stat = chi_square_statistic(counts, expected, kTrials, &dof);
  EXPECT_GT(chi_square_p_value(stat, dof), 1e-4)
      << "stat=" << stat << " dof=" << dof;
}

// Zealot geometry: one faulty agent-engine round under noise + zealots must
// follow the aggregate closed form
//   ones' = sources + zealot_ones + Bin(free_ones, P1) + Bin(free_zeros, P0)
// with P_b evaluated at the noisy fraction.
TEST(FaultDeterminism, AgentZealotStepMatchesAggregateClosedForm) {
  const MinorityDynamics minority(3);
  EnvironmentModel model;
  model.observation_noise = 0.1;
  model.zealot_fraction = 0.2;
  const std::uint64_t n = 40;
  const Configuration config{n, 15, Opinion::kOne, 1};
  const FaultSession session(model, config);
  const Configuration planted = session.plant(config);
  const std::uint64_t free_ones = session.free_ones(planted);
  const std::uint64_t free_zeros = session.free_zeros(planted);

  const double noisy_p =
      session.model().noisy_fraction(planted.fraction_ones());
  const double p1 = minority.aggregate_adoption(Opinion::kOne, noisy_p, n);
  const double p0 = minority.aggregate_adoption(Opinion::kZero, noisy_p, n);
  // pmf of Bin(free_ones, p1) + Bin(free_zeros, p0) by direct convolution.
  const std::vector<double> pmf_ones = binomial_pmf(free_ones, p1);
  const std::vector<double> pmf_zeros = binomial_pmf(free_zeros, p0);
  std::vector<double> expected(free_ones + free_zeros + 1, 0.0);
  for (std::size_t a = 0; a < pmf_ones.size(); ++a) {
    for (std::size_t b = 0; b < pmf_zeros.size(); ++b) {
      expected[a + b] += pmf_ones[a] * pmf_zeros[b];
    }
  }
  const std::uint64_t offset =
      planted.source_ones() + session.zealot_ones();

  const MemorylessAsStateful adapter(minority);
  const AgentParallelEngine engine(adapter);
  StopRule rule;
  rule.max_rounds = 1;
  const int kTrials = 20000;
  std::vector<std::uint64_t> counts(expected.size(), 0);
  for (int i = 0; i < kTrials; ++i) {
    Rng rng(13000 + i);
    const RunResult result = engine.run(config, rule, model, rng);
    ASSERT_GE(result.final_config.ones, offset);
    ++counts[result.final_config.ones - offset];
  }
  int dof = 0;
  const double stat = chi_square_statistic(counts, expected, kTrials, &dof);
  EXPECT_GT(chi_square_p_value(stat, dof), 1e-4)
      << "stat=" << stat << " dof=" << dof;
}

// Convergence-time law under noise agrees between the aggregate faulty path
// (exact closed form) and the sequential faulty path run to the same quorum.
TEST(FaultDeterminism, AggregateAndAgentNoisyConvergenceLawsAgree) {
  const MinorityDynamics minority(SampleSizePolicy::sqrt_n_log_n());
  EnvironmentModel model;
  model.observation_noise = 0.02;
  model.convergence_quorum = 0.9;
  const std::uint64_t n = 256;
  StopRule rule;
  rule.max_rounds = 5000;

  const AggregateParallelEngine aggregate(minority);
  const MemorylessAsStateful adapter(minority);
  const AgentParallelEngine agent(adapter);

  const int kTrials = 200;
  std::vector<double> agg_times, agent_times;
  int censored = 0;
  for (int i = 0; i < kTrials; ++i) {
    Rng rng_a(15000 + i);
    Rng rng_b(16000 + i);
    const RunResult a =
        aggregate.run(init_all_wrong(n, Opinion::kOne), rule, model, rng_a);
    const RunResult b =
        agent.run(init_all_wrong(n, Opinion::kOne), rule, model, rng_b);
    if (a.converged()) agg_times.push_back(static_cast<double>(a.rounds()));
    if (b.converged()) agent_times.push_back(static_cast<double>(b.rounds()));
    censored += !a.converged() + !b.converged();
  }
  // Both engines should solve this mild regime essentially always.
  EXPECT_LT(censored, kTrials / 10);
  const double d = ks_statistic(agg_times, agent_times);
  EXPECT_GT(ks_p_value(d, agg_times.size(), agent_times.size()), 1e-3)
      << "KS=" << d;
}

}  // namespace
}  // namespace bitspread
