// The fault-injection subsystem: EnvironmentModel normalization, zealot
// geometry and planting, the source-flip schedule with per-flip recovery
// segments, degraded classification, churn, the quorum-based stop rule, and
// the exact NoisyObservationProtocol wrapper.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/init.h"
#include "engine/agent.h"
#include "engine/aggregate.h"
#include "engine/sequential.h"
#include "faults/environment.h"
#include "faults/noisy_protocol.h"
#include "faults/session.h"
#include "protocols/minority.h"
#include "protocols/voter.h"
#include "random/binomial.h"

namespace bitspread {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// A degenerate rule that always adopts 1: convergence toward kOne is
// deterministic in one round, and recovery from a flip to kZero is
// impossible — ideal for exercising the flip/recovery bookkeeping without
// stochastic flakiness.
class AlwaysOne final : public MemorylessProtocol {
 public:
  AlwaysOne() noexcept : MemorylessProtocol(SampleSizePolicy::constant(3)) {}
  double g(Opinion, std::uint32_t, std::uint32_t,
           std::uint64_t) const noexcept override {
    return 1.0;
  }
  std::string name() const override { return "always-one"; }
};

TEST(EnvironmentModel, NormalizedClampsEveryChannel) {
  EnvironmentModel model;
  model.observation_noise = 0.9;  // BSC beyond 1/2 is relabeling, cap there.
  model.spontaneous_rate = -0.25;
  model.spontaneous_bias = 1.5;
  model.zealot_fraction = 2.0;
  model.churn_rate = -1.0;
  model.convergence_quorum = 3.0;
  const EnvironmentModel out = model.normalized();
  EXPECT_DOUBLE_EQ(out.observation_noise, 0.5);
  EXPECT_DOUBLE_EQ(out.spontaneous_rate, 0.0);
  EXPECT_DOUBLE_EQ(out.spontaneous_bias, 1.0);
  EXPECT_DOUBLE_EQ(out.zealot_fraction, 1.0);
  EXPECT_DOUBLE_EQ(out.churn_rate, 0.0);
  EXPECT_DOUBLE_EQ(out.convergence_quorum, 1.0);
}

TEST(EnvironmentModel, NormalizedReplacesNaNWithDefaults) {
  EnvironmentModel model;
  model.observation_noise = kNaN;
  model.spontaneous_rate = kNaN;
  model.spontaneous_bias = kNaN;
  model.zealot_fraction = kNaN;
  model.churn_rate = kNaN;
  model.convergence_quorum = kNaN;
  const EnvironmentModel out = model.normalized();
  EXPECT_DOUBLE_EQ(out.observation_noise, 0.0);
  EXPECT_DOUBLE_EQ(out.spontaneous_rate, 0.0);
  EXPECT_DOUBLE_EQ(out.spontaneous_bias, 0.5);
  EXPECT_DOUBLE_EQ(out.zealot_fraction, 0.0);
  EXPECT_DOUBLE_EQ(out.churn_rate, 0.0);
  EXPECT_DOUBLE_EQ(out.convergence_quorum, 1.0);
  EXPECT_FALSE(out.active());
}

TEST(EnvironmentModel, NormalizedSortsAndDedupesFlipSchedule) {
  EnvironmentModel model;
  model.source_flip_rounds = {30, 10, 30, 20, 10};
  const EnvironmentModel out = model.normalized();
  EXPECT_EQ(out.source_flip_rounds,
            (std::vector<std::uint64_t>{10, 20, 30}));
  EXPECT_TRUE(out.active());
}

TEST(EnvironmentModel, ZeroQuorumMeansFullQuorum) {
  EnvironmentModel model;
  model.convergence_quorum = 0.0;
  EXPECT_DOUBLE_EQ(model.normalized().convergence_quorum, 1.0);
}

TEST(EnvironmentModel, NoisyFractionIsTheBscPushforward) {
  EnvironmentModel model;
  model.observation_noise = 0.1;
  const EnvironmentModel out = model.normalized();
  EXPECT_DOUBLE_EQ(out.noisy_fraction(0.0), 0.1);
  EXPECT_DOUBLE_EQ(out.noisy_fraction(1.0), 0.9);
  EXPECT_DOUBLE_EQ(out.noisy_fraction(0.5), 0.5);
  EXPECT_NEAR(out.noisy_fraction(0.25), 0.25 + 0.1 * 0.5, 1e-15);
}

TEST(EnvironmentModel, ZealotCountIsFloorOfNonSourceFraction) {
  EnvironmentModel model;
  model.zealot_fraction = 0.1;
  const EnvironmentModel out = model.normalized();
  EXPECT_EQ(out.zealot_count(101, 1), 10u);  // floor(0.1 * 100)
  EXPECT_EQ(out.zealot_count(1, 1), 0u);
  EXPECT_EQ(out.zealot_count(5, 5), 0u);
}

TEST(EnvironmentModel, WrongConsensusEscapableOnlyUnderNoise) {
  EnvironmentModel quiet;
  quiet.zealot_fraction = 0.5;
  quiet.churn_rate = 0.3;
  EXPECT_FALSE(quiet.normalized().wrong_consensus_escapable());
  EnvironmentModel noisy;
  noisy.observation_noise = 0.01;
  EXPECT_TRUE(noisy.normalized().wrong_consensus_escapable());
  EnvironmentModel spontaneous;
  spontaneous.spontaneous_rate = 0.01;
  EXPECT_TRUE(spontaneous.normalized().wrong_consensus_escapable());
}

TEST(FaultSession, PlantingReservesZealotSlotsBothPolarities) {
  EnvironmentModel model;
  model.zealot_fraction = 0.25;
  {
    // correct = kOne: zealots hold kZero (the end-of-layout zero slots), so
    // the ones-count may not exceed n - zealots.
    const Configuration initial{100, 99, Opinion::kOne, 1};
    FaultSession session(model, initial);
    EXPECT_EQ(session.zealots(), 24u);  // floor(0.25 * 99)
    EXPECT_EQ(session.zealot_opinion(), Opinion::kZero);
    const Configuration planted = session.plant(initial);
    EXPECT_LE(planted.ones, 100u - 24u);
    EXPECT_EQ(session.free_agents(), 100u - 1u - 24u);
    // Zealot slots sit at the end of the layout.
    EXPECT_TRUE(session.is_zealot(99));
    EXPECT_TRUE(session.is_zealot(76));
    EXPECT_FALSE(session.is_zealot(75));
  }
  {
    // correct = kZero: zealots hold kOne (the slots right after the source),
    // so the ones-count may not drop below the zealot count.
    const Configuration initial{100, 0, Opinion::kZero, 1};
    FaultSession session(model, initial);
    EXPECT_EQ(session.zealot_opinion(), Opinion::kOne);
    const Configuration planted = session.plant(initial);
    EXPECT_GE(planted.ones, session.zealots());
    EXPECT_TRUE(session.is_zealot(1));
    EXPECT_FALSE(session.is_zealot(0));  // The source is never a zealot.
  }
}

TEST(FaultSession, QuorumCountsNonZealotCorrectHolders) {
  EnvironmentModel model;
  model.convergence_quorum = 0.9;
  const Configuration initial{100, 50, Opinion::kOne, 1};
  FaultSession session(model, initial);  // No zealots.
  Configuration config = initial;
  config.ones = 90;  // ceil(0.9 * 100) = 90 holders: met.
  EXPECT_TRUE(session.quorum_met(config));
  config.ones = 89;
  EXPECT_FALSE(session.quorum_met(config));
}

TEST(FaultSession, FullChurnCrashesEveryFreeCorrectHolder) {
  EnvironmentModel model;
  model.churn_rate = 1.0;
  const Configuration initial{64, 40, Opinion::kOne, 2};
  FaultSession session(model, initial);
  Rng rng(11);
  const Configuration after = session.churn(initial, rng);
  // Every free one-holder crashed into a zero-holder; only the sources'
  // displayed ones remain.
  EXPECT_EQ(after.ones, initial.source_ones());
}

TEST(FaultSession, EvaluateUsesStrictIntervalBoundaries) {
  const EnvironmentModel model;  // Fault-free session: same stop semantics.
  const Configuration initial{30, 10, Opinion::kOne, 1};
  FaultSession session(model, initial);
  StopRule rule;
  rule.interval_lo = 10;
  rule.interval_hi = 20;
  Configuration config = initial;
  config.ones = 10;  // On the boundary: NOT outside.
  EXPECT_EQ(session.evaluate(rule, config), std::nullopt);
  config.ones = 20;
  EXPECT_EQ(session.evaluate(rule, config), std::nullopt);
  config.ones = 9;
  EXPECT_EQ(session.evaluate(rule, config), StopReason::kIntervalExit);
  config.ones = 21;
  EXPECT_EQ(session.evaluate(rule, config), StopReason::kIntervalExit);
}

TEST(FaultSession, WrongConsensusStopsOnlyWhenAbsorbing) {
  // Source-less run where every free agent holds the wrong opinion.
  const Configuration all_wrong{50, 0, Opinion::kOne, 0};
  StopRule rule;
  {
    EnvironmentModel quiet;
    quiet.zealot_fraction = 0.2;
    FaultSession session(quiet, all_wrong);
    EXPECT_EQ(session.evaluate(rule, all_wrong),
              StopReason::kWrongConsensus);
  }
  {
    // Observation noise makes a wrong consensus escapable: keep running.
    EnvironmentModel noisy;
    noisy.zealot_fraction = 0.2;
    noisy.observation_noise = 0.05;
    FaultSession session(noisy, all_wrong);
    EXPECT_EQ(session.evaluate(rule, all_wrong), std::nullopt);
  }
}

TEST(AggregateFaults, WrongConsensusUnderZealotsReportedAtRoundZero) {
  const VoterDynamics voter;
  const AggregateParallelEngine engine(voter);
  EnvironmentModel model;
  model.zealot_fraction = 0.2;
  StopRule rule;
  rule.max_rounds = 100;
  Rng rng(3);
  const RunResult result =
      engine.run(Configuration{50, 0, Opinion::kOne, 0}, rule, model, rng);
  EXPECT_EQ(result.reason, StopReason::kWrongConsensus);
  EXPECT_EQ(result.rounds(), 0u);
}

TEST(AggregateFaults, NoiseEscapesWrongConsensus) {
  const VoterDynamics voter;
  const AggregateParallelEngine engine(voter);
  EnvironmentModel model;
  model.observation_noise = 0.1;
  StopRule rule;
  rule.max_rounds = 50;
  Rng rng(5);
  const RunResult result =
      engine.run(Configuration{1000, 0, Opinion::kOne, 0}, rule, model, rng);
  EXPECT_NE(result.reason, StopReason::kWrongConsensus);
  // Noise keeps injecting ones: the all-zeros state is not absorbing.
  EXPECT_GT(result.final_config.ones, 0u);
}

TEST(AggregateFaults, RecoverySegmentsTrackEveryFlip) {
  // always-one converges to kOne in one round; a flip to kZero makes the
  // sources display kZero but every free agent keeps adopting kOne, so the
  // run deterministically degrades at the cap.
  const AlwaysOne protocol;
  const AggregateParallelEngine engine(protocol);
  EnvironmentModel model;
  model.source_flip_rounds = {3};
  StopRule rule;
  rule.max_rounds = 10;
  Rng rng(17);
  const RunResult result = engine.run(
      init_all_wrong(64, Opinion::kOne), rule, model, rng);
  EXPECT_EQ(result.reason, StopReason::kDegraded);
  EXPECT_TRUE(result.censored());
  EXPECT_TRUE(result.degraded());
  ASSERT_EQ(result.recoveries.size(), 2u);
  EXPECT_TRUE(result.recoveries[0].recovered);
  EXPECT_EQ(result.recoveries[0].flip_round, 0u);
  EXPECT_EQ(result.recoveries[0].recovered_round, 1u);
  EXPECT_EQ(result.recoveries[0].recovery_rounds(), 1u);
  EXPECT_FALSE(result.recoveries[1].recovered);
  EXPECT_EQ(result.recoveries[1].flip_round, 3u);
  EXPECT_EQ(result.last_flip_round(), 3u);
}

TEST(AggregateFaults, RecoverableFlipReportsPerFlipRecoveryTimes) {
  // Minority with l = sqrt(n ln n) re-converges fast after each flip.
  const MinorityDynamics minority(SampleSizePolicy::sqrt_n_log_n());
  const AggregateParallelEngine engine(minority);
  EnvironmentModel model;
  model.source_flip_rounds = {60, 120};
  StopRule rule;
  rule.max_rounds = 2000;
  Rng rng(23);
  const RunResult result = engine.run(
      init_all_wrong(1 << 12, Opinion::kOne), rule, model, rng);
  ASSERT_TRUE(result.converged()) << to_string(result.reason);
  ASSERT_EQ(result.recoveries.size(), 3u);
  for (const RecoverySegment& segment : result.recoveries) {
    EXPECT_TRUE(segment.recovered);
    EXPECT_GT(segment.recovery_rounds(), 0u);
    EXPECT_LT(segment.recovery_rounds(), 200u);
  }
  EXPECT_EQ(result.recoveries[1].flip_round, 60u);
  EXPECT_EQ(result.recoveries[2].flip_round, 120u);
  // The run only stops after the LAST flip's recovery.
  EXPECT_GE(result.rounds(), 120u);
}

TEST(AggregateFaults, ZealotsCapTheReachableOnesCount) {
  const VoterDynamics voter;
  const AggregateParallelEngine engine(voter);
  EnvironmentModel model;
  model.zealot_fraction = 0.3;
  StopRule rule;
  rule.max_rounds = 200;
  Rng rng(29);
  Trajectory trajectory;
  const Configuration start = init_half(2000, Opinion::kOne);
  const FaultSession session(model, start);
  const RunResult result = engine.run(start, rule, model, rng, &trajectory);
  const std::uint64_t ceiling = 2000 - session.zealots();
  for (const auto& point : trajectory.points()) {
    EXPECT_LE(point.ones, ceiling);
  }
  EXPECT_LE(result.final_config.ones, ceiling);
}

TEST(SequentialFaults, FaultyRunMatchesSemantics) {
  const AlwaysOne protocol;
  const SequentialEngine engine(protocol);
  EnvironmentModel model;
  // One activation per step: give the scheduler enough parallel rounds to
  // touch every agent (coupon collector, ~ln n rounds) before the flip.
  model.source_flip_rounds = {15};
  StopRule rule;
  rule.max_rounds = 25;
  Rng rng(31);
  const RunResult result =
      engine.run(init_all_wrong(64, Opinion::kOne), rule, model, rng);
  EXPECT_EQ(result.reason, StopReason::kDegraded);
  EXPECT_TRUE(result.censored());
  EXPECT_TRUE(result.degraded());
  ASSERT_EQ(result.recoveries.size(), 2u);
  EXPECT_TRUE(result.recoveries[0].recovered);
  EXPECT_FALSE(result.recoveries[1].recovered);
  EXPECT_EQ(result.recoveries[1].flip_round, 15u);
}

TEST(AgentFaults, FaultyRunMatchesSemantics) {
  const AlwaysOne protocol;
  const MemorylessAsStateful adapter(protocol);
  const AgentParallelEngine engine(adapter);
  EnvironmentModel model;
  model.source_flip_rounds = {3};
  StopRule rule;
  rule.max_rounds = 10;
  Rng rng(37);
  const RunResult result =
      engine.run(init_all_wrong(64, Opinion::kOne), rule, model, rng);
  EXPECT_EQ(result.reason, StopReason::kDegraded);
  ASSERT_EQ(result.recoveries.size(), 2u);
  EXPECT_TRUE(result.recoveries[0].recovered);
  EXPECT_EQ(result.recoveries[0].recovered_round, 1u);
  EXPECT_FALSE(result.recoveries[1].recovered);
}

TEST(AgentFaults, ZealotSlotsNeverUpdate) {
  const AlwaysOne protocol;  // Would flip every zealot in one round.
  const MemorylessAsStateful adapter(protocol);
  const AgentParallelEngine engine(adapter);
  EnvironmentModel model;
  model.zealot_fraction = 0.25;
  StopRule rule;
  rule.max_rounds = 5;
  Rng rng(41);
  const Configuration start = init_all_wrong(100, Opinion::kOne);
  const FaultSession session(model, start);
  const RunResult result = engine.run(start, rule, model, rng);
  // Free agents all adopt kOne immediately; zealots pin kZero forever.
  EXPECT_EQ(result.final_config.ones, 100 - session.zealots());
  // Quorum 1.0 over non-zealots IS met: zealots are excluded.
  EXPECT_EQ(result.reason, StopReason::kCorrectConsensus);
}

TEST(NoisyProtocol, GMatchesDirectConvolution) {
  // g'(b, k) must equal E[g(b, K')] with K' = Bin(k, 1-e) + Bin(l-k, e).
  const MinorityDynamics minority(5);
  EnvironmentModel model;
  model.observation_noise = 0.15;
  const NoisyObservationProtocol noisy(minority, model);
  const std::uint64_t n = 100;
  const std::uint32_t ell = minority.sample_size(n);
  for (const Opinion own : {Opinion::kZero, Opinion::kOne}) {
    for (std::uint32_t k = 0; k <= ell; ++k) {
      const std::vector<double> from_true = binomial_pmf(k, 1.0 - 0.15);
      const std::vector<double> from_false = binomial_pmf(ell - k, 0.15);
      double expected = 0.0;
      for (std::uint32_t a = 0; a <= k; ++a) {
        for (std::uint32_t b = 0; b <= ell - k; ++b) {
          expected += from_true[a] * from_false[b] *
                      minority.g(own, a + b, ell, n);
        }
      }
      EXPECT_NEAR(noisy.g(own, k, ell, n), expected, 1e-12);
    }
  }
}

TEST(NoisyProtocol, AggregateAdoptionIsTheEq4SumOfNoisyG) {
  // The closed form P_b(noisy_fraction(p)) must coincide with the Eq. 4 sum
  // over the noisy g — the commuting-square that keeps the aggregate engine
  // exact under observation noise.
  const MinorityDynamics minority(7);
  EnvironmentModel model;
  model.observation_noise = 0.08;
  model.spontaneous_rate = 0.02;
  model.spontaneous_bias = 0.3;
  const NoisyObservationProtocol noisy(minority, model);
  const std::uint64_t n = 64;
  for (const Opinion own : {Opinion::kZero, Opinion::kOne}) {
    for (const double p : {0.0, 0.1, 0.37, 0.5, 0.82, 1.0}) {
      EXPECT_NEAR(noisy.aggregate_adoption(own, p, n),
                  eq4_adoption_sum(noisy, own, p, n), 1e-12)
          << "own=" << to_int(own) << " p=" << p;
    }
  }
}

TEST(NoisyProtocol, ReducesToBaseWithoutNoise) {
  const VoterDynamics voter;
  const EnvironmentModel model;  // All channels off.
  const NoisyObservationProtocol noisy(voter, model);
  const std::uint64_t n = 50;
  const std::uint32_t ell = voter.sample_size(n);
  for (std::uint32_t k = 0; k <= ell; ++k) {
    EXPECT_DOUBLE_EQ(noisy.g(Opinion::kOne, k, ell, n),
                     voter.g(Opinion::kOne, k, ell, n));
  }
  EXPECT_DOUBLE_EQ(noisy.aggregate_adoption(Opinion::kZero, 0.3, n),
                   voter.aggregate_adoption(Opinion::kZero, 0.3, n));
}

}  // namespace
}  // namespace bitspread
