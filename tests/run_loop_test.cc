// The unified run-loop core (engine/run_loop.h): TimePolicy/TimeUnit
// conversions, and the cross-cutting driver features — fault lifecycle,
// telemetry, trajectory and flight-recorder recording — on the engines that
// gained them in the refactor (alpha-synchronous, conflicting-sources,
// multi-opinion, population).
#include <gtest/gtest.h>

#include <string>

#include "engine/aggregate.h"
#include "engine/alpha_sync.h"
#include "engine/conflicting.h"
#include "engine/run_loop.h"
#include "engine/stopping.h"
#include "engine/trajectory.h"
#include "faults/environment.h"
#include "multi/engine.h"
#include "multi/protocols.h"
#include "population/engine.h"
#include "population/protocols.h"
#include "protocols/voter.h"
#include "telemetry/jsonl.h"
#include "telemetry/telemetry.h"

namespace bitspread {
namespace {

TEST(TimePolicy, FactoriesSetUnitsAndScales) {
  const TimePolicy parallel = TimePolicy::parallel();
  EXPECT_EQ(parallel.unit, TimeUnit::kParallelRounds);
  EXPECT_EQ(parallel.ticks_per_round, 1u);
  EXPECT_EQ(parallel.units_per_tick, 1u);

  const TimePolicy activations = TimePolicy::activations(30);
  EXPECT_EQ(activations.unit, TimeUnit::kActivations);
  EXPECT_EQ(activations.ticks_per_round, 30u);
  EXPECT_EQ(activations.units_per_tick, 1u);

  const TimePolicy interactions = TimePolicy::interaction_rounds(30);
  EXPECT_EQ(interactions.unit, TimeUnit::kActivations);
  EXPECT_EQ(interactions.ticks_per_round, 1u);
  EXPECT_EQ(interactions.units_per_tick, 30u);

  const TimePolicy alpha = TimePolicy::alpha_rounds(0.25);
  EXPECT_EQ(alpha.unit, TimeUnit::kAlphaRounds);
  EXPECT_DOUBLE_EQ(alpha.alpha, 0.25);

  EXPECT_FALSE(parallel.describe().empty());
  EXPECT_FALSE(interactions.describe().empty());
}

TEST(TimeUnitResult, AccessorsConvertBetweenUnits) {
  RunResult parallel;
  parallel.unit = TimeUnit::kParallelRounds;
  parallel.ticks = 7;
  parallel.final_config = Configuration{30, 30, Opinion::kOne};
  EXPECT_EQ(parallel.rounds(), 7u);
  EXPECT_EQ(parallel.activations(), 210u);
  EXPECT_DOUBLE_EQ(parallel.parallel_rounds(), 7.0);

  RunResult sequential;
  sequential.unit = TimeUnit::kActivations;
  sequential.ticks = 90;
  sequential.final_config = Configuration{30, 30, Opinion::kOne};
  EXPECT_EQ(sequential.rounds(), 3u);
  EXPECT_EQ(sequential.activations(), 90u);
  EXPECT_DOUBLE_EQ(sequential.parallel_rounds(), 3.0);

  RunResult alpha;
  alpha.unit = TimeUnit::kAlphaRounds;
  alpha.alpha = 0.5;
  alpha.ticks = 10;
  alpha.final_config = Configuration{30, 30, Opinion::kOne};
  EXPECT_EQ(alpha.rounds(), 10u);
  EXPECT_EQ(alpha.activations(), 150u);
  EXPECT_DOUBLE_EQ(alpha.parallel_rounds(), 5.0);
}

TEST(TimeUnitResult, ToStringNamesEveryUnit) {
  EXPECT_FALSE(to_string(TimeUnit::kParallelRounds).empty());
  EXPECT_FALSE(to_string(TimeUnit::kActivations).empty());
  EXPECT_FALSE(to_string(TimeUnit::kAlphaRounds).empty());
  EXPECT_NE(to_string(TimeUnit::kParallelRounds),
            to_string(TimeUnit::kActivations));
}

// --- Alpha-synchronous engine through the driver's fault lifecycle --------

TEST(RunLoopFaults, AlphaRunRecoversFromSourceFlip) {
  const VoterDynamics voter;
  const AlphaSynchronousEngine engine(voter, 0.5);
  StopRule rule;
  rule.max_rounds = 1000000;
  EnvironmentModel model;
  model.source_flip_rounds = {5};
  Rng rng(71);
  const RunResult result =
      engine.run(Configuration{30, 10, Opinion::kOne}, rule, model, rng);
  EXPECT_TRUE(result.converged());
  EXPECT_EQ(result.unit, TimeUnit::kAlphaRounds);
  ASSERT_EQ(result.recoveries.size(), 2u);
  // Segment 0 ends at the flip; a voter rarely reaches quorum in 5 rounds,
  // so only the post-flip segment is guaranteed to close with a recovery.
  EXPECT_TRUE(result.recoveries[1].recovered);
  EXPECT_EQ(result.last_flip_round(), 5u);
}

TEST(RunLoopFaults, AlphaRunDegradesWhenFlipCannotRecover) {
  const VoterDynamics voter;
  const AlphaSynchronousEngine engine(voter, 1.0);
  StopRule rule;
  rule.max_rounds = 11;  // One round after the flip: cannot re-converge.
  EnvironmentModel model;
  model.source_flip_rounds = {10};
  Rng rng(72);
  const RunResult result =
      engine.run(Configuration{64, 32, Opinion::kOne}, rule, model, rng);
  EXPECT_EQ(result.reason, StopReason::kDegraded);
  EXPECT_TRUE(result.degraded());
  EXPECT_TRUE(result.censored());
  ASSERT_EQ(result.recoveries.size(), 2u);
  EXPECT_FALSE(result.recoveries.back().recovered);
  EXPECT_EQ(result.last_flip_round(), 10u);
}

TEST(RunLoopTrajectory, AlphaRunRecordsEveryRoundAndTheFinalState) {
  const VoterDynamics voter;
  const AlphaSynchronousEngine engine(voter, 0.5);
  StopRule rule;
  rule.max_rounds = 20;
  Rng rng(73);
  Trajectory trajectory;
  const RunResult result = engine.run(Configuration{256, 128, Opinion::kOne},
                                      rule, rng, &trajectory);
  ASSERT_FALSE(trajectory.empty());
  EXPECT_EQ(trajectory.points().front().round, 0u);
  EXPECT_EQ(trajectory.back().round, result.ticks);
  EXPECT_EQ(trajectory.back().ones, result.final_config.ones);
  EXPECT_EQ(trajectory.size(), result.ticks + 1);
}

// --- Conflicting-sources engine -------------------------------------------

TEST(RunLoopFaults, ConflictingBothCampsReportsZealotTelemetry) {
  const VoterDynamics voter;
  const ConflictingAggregateEngine engine(voter);
  StopRule rule;
  rule.max_rounds = 30;
  EnvironmentModel model;
  model.convergence_quorum = 0.8;
  Rng rng(74);
  const ConflictingConfiguration config{64, 32, 4, 2};
  const RunResult result = engine.run(config, rule, model, rng);
  EXPECT_TRUE(result.reason == StopReason::kCorrectConsensus ||
              result.reason == StopReason::kRoundLimit);
  if (telemetry::kCompiledIn) {
    // The minority camp rides the zealot channel.
    EXPECT_EQ(result.telemetry.fault_zealots, 2u);
    EXPECT_GT(result.telemetry.samples_drawn, 0u);
  }
}

TEST(RunLoopTelemetry, ConflictingWatchCarriesTelemetry) {
  const VoterDynamics voter;
  const ConflictingAggregateEngine engine(voter);
  Rng rng(75);
  Trajectory trajectory;
  const auto watch = engine.watch(ConflictingConfiguration{64, 32, 4, 2}, 25,
                                  rng, &trajectory);
  EXPECT_EQ(trajectory.back().round, 25u);
  EXPECT_EQ(watch.telemetry.recorded, telemetry::kCompiledIn);
  if (telemetry::kCompiledIn) {
    EXPECT_EQ(watch.telemetry.rounds, 25u);
    EXPECT_GT(watch.telemetry.samples_drawn, 0u);
  }
}

// --- Multi-opinion engines ------------------------------------------------

TEST(RunLoopFaults, MultiQuorumStopsTheFaultyRun) {
  const MultiVoter voter(3, 4);
  const MultiAggregateEngine engine(voter);
  StopRule rule;
  EnvironmentModel model;
  model.observation_noise = 0.02;
  model.convergence_quorum = 0.7;  // ceil(0.7 * 64) = 45 <= 50: met at once.
  Rng rng(76);
  const MultiRunResult result =
      engine.run(MultiConfiguration{{50, 7, 7}, 0, 1}, rule, model, rng);
  EXPECT_EQ(result.reason, StopReason::kCorrectConsensus);
  EXPECT_EQ(result.rounds, 0u);
}

TEST(RunLoopFaults, MultiChurnKeepsRunFromConsensusAndIsCounted) {
  const MultiVoter voter(3, 4);
  const MultiAggregateEngine engine(voter);
  StopRule rule;
  rule.max_rounds = 50;
  EnvironmentModel model;
  model.observation_noise = 0.1;
  model.churn_rate = 0.2;
  Rng rng(77);
  const MultiRunResult result =
      engine.run(MultiConfiguration{{50, 7, 7}, 0, 1}, rule, model, rng);
  EXPECT_EQ(result.reason, StopReason::kRoundLimit);
  EXPECT_TRUE(result.censored());
  if (telemetry::kCompiledIn) {
    EXPECT_GT(result.telemetry.fault_churned, 0u);
    EXPECT_EQ(result.telemetry.rounds, 50u);
  }
}

TEST(RunLoopFaults, MultiWrongConsensusDoesNotStopWhenEscapable) {
  const MultiVoter voter(3, 4);
  const MultiAggregateEngine engine(voter);
  StopRule rule;
  rule.max_rounds = 30;
  EnvironmentModel model;
  model.observation_noise = 0.2;  // Wrong consensus is escapable.
  Rng rng(78);
  // Source-less all-wrong start: the fault-free rule would stop immediately.
  const MultiRunResult result =
      engine.run(MultiConfiguration{{0, 64, 0}, 0, 0}, rule, model, rng);
  EXPECT_NE(result.reason, StopReason::kWrongConsensus);
}

TEST(RunLoopFaults, MultiAgentFaultyRunMatchesAggregateShape) {
  const MultiVoter voter(3, 4);
  const MultiAgentEngine engine(voter);
  StopRule rule;
  rule.max_rounds = 40;
  EnvironmentModel model;
  model.observation_noise = 0.1;
  model.spontaneous_rate = 0.05;
  model.churn_rate = 0.1;
  Rng rng(79);
  Trajectory trajectory;
  const MultiRunResult result = engine.run(
      MultiConfiguration{{40, 12, 12}, 0, 1}, rule, model, rng, &trajectory);
  EXPECT_LE(result.rounds, 40u);
  EXPECT_EQ(result.final_config.n(), 64u);
  ASSERT_FALSE(trajectory.empty());
  EXPECT_EQ(trajectory.points().front().round, 0u);
  // The trajectory tracks the correct-opinion count, not a binary ones.
  EXPECT_EQ(trajectory.back().ones, result.final_config.counts[0]);
}

// --- Population engine ----------------------------------------------------

TEST(RunLoopFaults, PopulationFlipResetsSourcesAndRecovers) {
  const PairwiseVoter voter;
  const PopulationEngine engine(voter);
  StopRule rule;
  rule.max_rounds = 1000000;
  EnvironmentModel model;
  model.source_flip_rounds = {5};
  Rng rng(80);
  auto population = engine.make_population(32, Opinion::kOne, 16);
  const RunResult result = engine.run(population, rule, model, rng);
  EXPECT_TRUE(result.converged());
  EXPECT_EQ(result.unit, TimeUnit::kActivations);
  EXPECT_EQ(result.ticks, result.rounds() * 32);
  ASSERT_EQ(result.recoveries.size(), 2u);
  EXPECT_TRUE(result.recoveries.back().recovered);
  // The flip re-targeted correct to kZero; the run ended there.
  EXPECT_EQ(result.final_config.correct, Opinion::kZero);
}

TEST(RunLoopFaults, PopulationZealotSlotsStayFrozen) {
  const PairwiseVoter voter;
  const PopulationEngine engine(voter);
  StopRule rule;
  rule.max_rounds = 1000000;
  EnvironmentModel model;
  model.extra_zealots = 2;
  model.convergence_quorum = 0.8;
  Rng rng(81);
  auto population = engine.make_population(16, Opinion::kOne, 8);
  const RunResult result = engine.run(population, rule, model, rng);
  EXPECT_TRUE(result.converged());
  // Zealots pin the initially wrong opinion (kZero -> the last slots).
  EXPECT_EQ(voter.opinion(population.states[15]), Opinion::kZero);
  EXPECT_EQ(voter.opinion(population.states[14]), Opinion::kZero);
  if (telemetry::kCompiledIn) {
    EXPECT_EQ(result.telemetry.fault_zealots, 2u);
  }
}

TEST(RunLoopTrajectory, PopulationRunRecordsPerParallelRound) {
  const EpidemicProtocol epidemic;
  const PopulationEngine engine(epidemic);
  StopRule rule;
  rule.max_rounds = 1000000;
  Rng rng(82);
  auto population = engine.make_population(64, Opinion::kOne, 1);
  Trajectory trajectory;
  const RunResult result = engine.run(population, rule, rng, &trajectory);
  EXPECT_TRUE(result.converged());
  ASSERT_FALSE(trajectory.empty());
  EXPECT_EQ(trajectory.points().front().round, 0u);
  EXPECT_EQ(trajectory.back().round, result.rounds());
  EXPECT_EQ(trajectory.back().ones, result.final_config.ones);
}

// --- Flight-recorder round streams from the newly migrated engines --------

TEST(RunLoopTelemetry, MigratedEnginesStreamRounds) {
  const std::string path = testing::TempDir() + "/run_loop_rounds.jsonl";
  {
    telemetry::RoundStream stream(path);
    ASSERT_TRUE(stream.ok());
    telemetry::install_round_sink(&stream);

    const VoterDynamics voter;
    const AlphaSynchronousEngine alpha(voter, 0.5);
    StopRule rule;
    rule.max_rounds = 10;  // Voter needs ~n rounds: no consensus inside 10.
    Rng rng(83);
    const RunResult result =
        alpha.run(Configuration{4096, 2048, Opinion::kOne}, rule, rng);
    telemetry::install_round_sink(nullptr);

    if (telemetry::kCompiledIn) {
      EXPECT_EQ(result.ticks, 10u);
      EXPECT_EQ(stream.rounds_seen(), result.ticks + 1);
    } else {
      EXPECT_EQ(stream.rounds_seen(), 0u);
    }
  }
  {
    telemetry::RoundStream stream(path);
    ASSERT_TRUE(stream.ok());
    telemetry::install_round_sink(&stream);

    const MultiVoter voter(3, 4);
    const MultiAggregateEngine engine(voter);
    StopRule rule;
    rule.max_rounds = 10;
    Rng rng(84);
    const MultiRunResult result =
        engine.run(MultiConfiguration{{2048, 1024, 1024}, 0, 1}, rule, rng);
    telemetry::install_round_sink(nullptr);

    if (telemetry::kCompiledIn) {
      EXPECT_EQ(stream.rounds_seen(), result.rounds + 1);
    } else {
      EXPECT_EQ(stream.rounds_seen(), 0u);
    }
  }
  {
    telemetry::RoundStream stream(path);
    ASSERT_TRUE(stream.ok());
    telemetry::install_round_sink(&stream);

    const PairwiseVoter voter;
    const PopulationEngine engine(voter);
    StopRule rule;
    rule.max_rounds = 10;
    Rng rng(85);
    auto population = engine.make_population(256, Opinion::kOne, 128);
    const RunResult result = engine.run(population, rule, rng);
    telemetry::install_round_sink(nullptr);

    if (telemetry::kCompiledIn) {
      EXPECT_EQ(stream.rounds_seen(), result.rounds() + 1);
    } else {
      EXPECT_EQ(stream.rounds_seen(), 0u);
    }
  }
}

}  // namespace
}  // namespace bitspread
