// Tests for the §3.8 profiling subsystem: the multiplex-scaling core, the
// fallback ladder, per-phase PMU accumulation, the JSON rendering, the
// sampling profiler, and — the property everything else leans on — that a
// profiled run is bit-identical to an unprofiled one.
//
// The suite is build-agnostic: probe-dependent expectations key off
// telemetry::kCompiledIn, so it runs green in the default build (probes are
// no-ops), the telemetry build (probes live), and under BITSPREAD_NO_PMU=1
// (forced fallback rung; the dedicated ctest variant in CMakeLists sets it).
#include "profile/counters.h"

#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/init.h"
#include "engine/kernel/kernel.h"
#include "engine/sharded.h"
#include "engine/stopping.h"
#include "profile/pmu.h"
#include "profile/sampling.h"
#include "protocols/minority.h"
#include "telemetry/json.h"
#include "telemetry/telemetry.h"

namespace bitspread {
namespace profile {
namespace {

CounterSnapshot snap(std::uint64_t cycles, std::uint64_t instructions,
                     std::uint64_t enabled_ns, std::uint64_t running_ns,
                     std::uint64_t wall_ns, std::uint64_t tsc = 0) {
  CounterSnapshot s;
  s.value[static_cast<std::size_t>(Counter::kCycles)] = cycles;
  s.value[static_cast<std::size_t>(Counter::kInstructions)] = instructions;
  s.time_enabled_ns = enabled_ns;
  s.time_running_ns = running_ns;
  s.wall_ns = wall_ns;
  s.tsc = tsc;
  return s;
}

std::array<bool, kCounterCount> open_mask(bool cycles, bool instructions) {
  std::array<bool, kCounterCount> open{};
  open[static_cast<std::size_t>(Counter::kCycles)] = cycles;
  open[static_cast<std::size_t>(Counter::kInstructions)] = instructions;
  return open;
}

// --------------------------------------------------------------------------
// scale_delta: the pure multiplex-scaling core.

TEST(ScaleDelta, UnmultiplexedPassesRawCounts) {
  const CounterSnapshot begin = snap(1000, 2000, 5000, 5000, 100);
  const CounterSnapshot end = snap(1500, 3200, 9000, 9000, 400);
  const CounterDelta d =
      scale_delta(begin, end, open_mask(true, true), /*pmu=*/true);
  EXPECT_TRUE(d.pmu);
  EXPECT_FALSE(d.multiplexed);
  EXPECT_DOUBLE_EQ(d.scale, 1.0);
  EXPECT_EQ(d.value[static_cast<std::size_t>(Counter::kCycles)], 500u);
  EXPECT_EQ(d.value[static_cast<std::size_t>(Counter::kInstructions)], 1200u);
  EXPECT_TRUE(d.valid[static_cast<std::size_t>(Counter::kCycles)]);
  EXPECT_TRUE(d.valid[static_cast<std::size_t>(Counter::kInstructions)]);
  EXPECT_EQ(d.wall_ns, 300u);
  EXPECT_DOUBLE_EQ(d.ipc(), 1200.0 / 500.0);
}

TEST(ScaleDelta, MultiplexedCountsAreScaledAndFlagged) {
  // The group was on the PMU for half its enabled window: the standard
  // perf estimate doubles the raw counts and flags the row.
  const CounterSnapshot begin = snap(0, 0, 0, 0, 0);
  const CounterSnapshot end = snap(1000, 3000, 8000, 4000, 100);
  const CounterDelta d =
      scale_delta(begin, end, open_mask(true, true), /*pmu=*/true);
  EXPECT_TRUE(d.multiplexed);
  EXPECT_DOUBLE_EQ(d.scale, 2.0);
  EXPECT_EQ(d.value[static_cast<std::size_t>(Counter::kCycles)], 2000u);
  EXPECT_EQ(d.value[static_cast<std::size_t>(Counter::kInstructions)], 6000u);
  // IPC is scale-invariant: both sides were scaled by the same factor.
  EXPECT_DOUBLE_EQ(d.ipc(), 3.0);
}

TEST(ScaleDelta, ClosedCountersAreInvalid) {
  // Rung 2: instructions never opened — its slot must stay invalid and
  // the IPC must refuse to divide.
  const CounterSnapshot begin = snap(100, 999, 10, 10, 0);
  const CounterSnapshot end = snap(400, 999, 20, 20, 0);
  const CounterDelta d =
      scale_delta(begin, end, open_mask(true, false), /*pmu=*/true);
  EXPECT_TRUE(d.valid[static_cast<std::size_t>(Counter::kCycles)]);
  EXPECT_FALSE(d.valid[static_cast<std::size_t>(Counter::kInstructions)]);
  EXPECT_DOUBLE_EQ(d.ipc(), 0.0);
}

TEST(ScaleDelta, FallbackRungUsesTscAndWall) {
  // Rung 3: no PMU. Cycles come from the tsc pair (when the ISA has one),
  // wall time always survives, and nothing else is valid.
  const CounterSnapshot begin = snap(0, 0, 0, 0, 1000, 5000);
  const CounterSnapshot end = snap(0, 0, 0, 0, 4000, 9000);
  const CounterDelta d =
      scale_delta(begin, end, open_mask(false, false), /*pmu=*/false);
  EXPECT_FALSE(d.pmu);
  EXPECT_FALSE(d.multiplexed);
  EXPECT_EQ(d.wall_ns, 3000u);
  EXPECT_TRUE(d.valid[static_cast<std::size_t>(Counter::kCycles)]);
  EXPECT_EQ(d.value[static_cast<std::size_t>(Counter::kCycles)], 4000u);
  EXPECT_FALSE(d.valid[static_cast<std::size_t>(Counter::kInstructions)]);
  EXPECT_DOUBLE_EQ(d.ipc(), 0.0);
}

TEST(ScaleDelta, BackwardsClocksClampToZero) {
  // A torn read pair (end < begin) must clamp, never wrap to 2^64-ish.
  const CounterSnapshot begin = snap(500, 0, 100, 100, 900, 70);
  const CounterSnapshot end = snap(400, 0, 90, 90, 800, 60);
  const CounterDelta pmu_d =
      scale_delta(begin, end, open_mask(true, false), /*pmu=*/true);
  EXPECT_EQ(pmu_d.value[static_cast<std::size_t>(Counter::kCycles)], 0u);
  EXPECT_EQ(pmu_d.wall_ns, 0u);
  const CounterDelta fb =
      scale_delta(begin, end, open_mask(false, false), /*pmu=*/false);
  EXPECT_FALSE(fb.valid[static_cast<std::size_t>(Counter::kCycles)]);
}

// --------------------------------------------------------------------------
// PmuCounterSet: the ladder on this host, and the forced fallback.

TEST(PmuCounterSet, ReadsAreMonotoneOnEveryRung) {
  PmuCounterSet& set = thread_counters();
  if (!set.available()) {
    EXPECT_STRNE(set.unavailable_reason(), "")
        << "fallback rung must explain itself";
  }
  CounterSnapshot a;
  CounterSnapshot b;
  set.read(a);
  // Burn a little CPU so every clock moves.
  volatile std::uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink += static_cast<std::uint64_t>(i);
  set.read(b);
  EXPECT_GE(b.wall_ns, a.wall_ns);
  const CounterDelta d = set.delta(a, b);
  EXPECT_EQ(d.pmu, set.available());
  EXPECT_GT(d.wall_ns, 0u);
  if (set.available()) {
    EXPECT_TRUE(d.valid[static_cast<std::size_t>(Counter::kCycles)]);
    EXPECT_GT(d.value[static_cast<std::size_t>(Counter::kCycles)], 0u);
  }
}

TEST(PmuCounterSet, ForcedFallbackViaEnvironment) {
  // BITSPREAD_NO_PMU=1 must force rung 3 regardless of the host. A fresh
  // set is constructed under the override (thread_counters() may already
  // have latched the host's real rung).
  ASSERT_EQ(setenv("BITSPREAD_NO_PMU", "1", 1), 0);
  {
    PmuCounterSet forced;
    EXPECT_FALSE(forced.available());
    EXPECT_STREQ(forced.unavailable_reason(), "BITSPREAD_NO_PMU=1");
    EXPECT_EQ(forced.counters_open(), 0);
    CounterSnapshot a;
    CounterSnapshot b;
    forced.read(a);
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 100000; ++i) sink += static_cast<std::uint64_t>(i);
    forced.read(b);
    const CounterDelta d = forced.delta(a, b);
    EXPECT_FALSE(d.pmu);
    EXPECT_GT(d.wall_ns, 0u);
  }
  unsetenv("BITSPREAD_NO_PMU");
}

// --------------------------------------------------------------------------
// PmuPhaseStats: per-phase accumulation and JSON rendering.

CounterDelta synthetic_delta(std::uint64_t cycles, std::uint64_t instructions,
                             bool multiplexed) {
  CounterDelta d;
  d.value[static_cast<std::size_t>(Counter::kCycles)] = cycles;
  d.valid[static_cast<std::size_t>(Counter::kCycles)] = true;
  d.value[static_cast<std::size_t>(Counter::kInstructions)] = instructions;
  d.valid[static_cast<std::size_t>(Counter::kInstructions)] = true;
  d.wall_ns = 50;
  d.multiplexed = multiplexed;
  d.pmu = true;
  return d;
}

TEST(PmuPhaseStats, AccumulatesPerPhase) {
  PmuPhaseStats stats;
  const auto gather = telemetry::Phase::kKernelGather;
  const auto decide = telemetry::Phase::kKernelDecide;
  stats.add(gather, synthetic_delta(100, 250, false));
  stats.add(gather, synthetic_delta(300, 350, false));
  stats.add(decide, synthetic_delta(10, 40, true));

  EXPECT_EQ(stats.samples(gather), 2u);
  EXPECT_EQ(stats.total(gather, Counter::kCycles), 400u);
  EXPECT_EQ(stats.total(gather, Counter::kInstructions), 600u);
  EXPECT_EQ(stats.wall_ns(gather), 100u);
  EXPECT_DOUBLE_EQ(stats.ipc(gather), 1.5);
  EXPECT_FALSE(stats.multiplexed(gather));
  EXPECT_TRUE(stats.multiplexed(decide));
  EXPECT_DOUBLE_EQ(stats.ipc(decide), 4.0);
  EXPECT_TRUE(stats.pmu_backed());
  // Phases never recorded stay empty.
  EXPECT_EQ(stats.samples(telemetry::Phase::kFaultApply), 0u);
  EXPECT_DOUBLE_EQ(stats.ipc(telemetry::Phase::kFaultApply), 0.0);

  stats.reset();
  EXPECT_EQ(stats.samples(gather), 0u);
  EXPECT_EQ(stats.total(gather, Counter::kCycles), 0u);
  EXPECT_FALSE(stats.pmu_backed());
}

TEST(PmuPhaseStats, JsonCarriesPhasesAndFallbackStamp) {
  PmuPhaseStats stats;
  stats.add(telemetry::Phase::kKernelGather, synthetic_delta(100, 220, false));
  const JsonValue with_pmu = pmu_stats_to_json(stats, true, "");
  const std::string dumped = with_pmu.dump();
  EXPECT_NE(dumped.find("\"pmu_available\": true"), std::string::npos);
  EXPECT_NE(dumped.find("kernel_gather"), std::string::npos);
  EXPECT_NE(dumped.find("\"ipc\""), std::string::npos);
  // Zero-sample phases are skipped.
  EXPECT_EQ(dumped.find("round_step"), std::string::npos);

  PmuPhaseStats empty;
  const JsonValue without =
      pmu_stats_to_json(empty, false, "BITSPREAD_NO_PMU=1");
  const std::string fallback = without.dump();
  EXPECT_NE(fallback.find("\"pmu_available\": false"), std::string::npos);
  EXPECT_NE(fallback.find("BITSPREAD_NO_PMU=1"), std::string::npos);
}

// --------------------------------------------------------------------------
// Probes: sink discipline and bit-identity.

TEST(Probes, KernelBlockProfilerRecordsOnlyWhenCompiledAndSinked) {
  PmuPhaseStats pmu_stats;
  telemetry::PhaseStats phase_stats;
  install_pmu_sink(&pmu_stats);
  telemetry::install_phase_sink(&phase_stats);
  {
    KernelBlockProfiler prof;
    prof.enter(telemetry::Phase::kKernelGather);
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 10000; ++i) sink += static_cast<std::uint64_t>(i);
    prof.enter(telemetry::Phase::kKernelCommit);
    for (int i = 0; i < 10000; ++i) sink += static_cast<std::uint64_t>(i);
    prof.leave();
  }
  telemetry::install_phase_sink(nullptr);
  install_pmu_sink(nullptr);

  if (telemetry::kCompiledIn) {
    EXPECT_EQ(pmu_stats.samples(telemetry::Phase::kKernelGather), 1u);
    EXPECT_EQ(pmu_stats.samples(telemetry::Phase::kKernelCommit), 1u);
    EXPECT_GT(phase_stats.total_seconds(telemetry::Phase::kKernelGather), 0.0);
    // pmu_backed mirrors the host's rung: hardware deltas or wall-only.
    EXPECT_EQ(pmu_stats.pmu_backed(), thread_counters().available());
  } else {
    EXPECT_EQ(pmu_stats.samples(telemetry::Phase::kKernelGather), 0u);
    EXPECT_DOUBLE_EQ(
        phase_stats.total_seconds(telemetry::Phase::kKernelGather), 0.0);
  }
}

TEST(Probes, ProfiledRunIsBitIdentical) {
  // The load-bearing property: installing both sinks must not change a
  // single RNG draw. Golden digests pin the same thing at full depth; this
  // is the fast in-tree version over every available backend.
  const std::uint64_t n = 1u << 10;
  const MinorityDynamics minority(3);
  const Configuration init = init_half(n, Opinion::kOne);
  StopRule rule;
  rule.max_rounds = 16;
  rule.stop_on_any_consensus = false;

  std::vector<kernel::Backend> backends{kernel::Backend::kLegacy};
  for (const kernel::Backend b : kernel::available_backends()) {
    backends.push_back(b);
  }
  for (const kernel::Backend backend : backends) {
    const ShardedAgentEngine engine(minority,
                                    {.threads = 1, .kernel = backend});
    const RunResult plain = engine.run(init, rule, /*seed=*/42);

    PmuPhaseStats pmu_stats;
    telemetry::PhaseStats phase_stats;
    install_pmu_sink(&pmu_stats);
    telemetry::install_phase_sink(&phase_stats);
    const RunResult profiled = engine.run(init, rule, /*seed=*/42);
    telemetry::install_phase_sink(nullptr);
    install_pmu_sink(nullptr);

    EXPECT_EQ(profiled.final_config.ones, plain.final_config.ones)
        << "backend " << kernel::backend_name(backend);
    EXPECT_EQ(profiled.ticks, plain.ticks)
        << "backend " << kernel::backend_name(backend);
    if (telemetry::kCompiledIn && backend != kernel::Backend::kLegacy) {
      EXPECT_GT(pmu_stats.samples(telemetry::Phase::kKernelGather), 0u)
          << "kernel backends must record sub-phase samples when probes "
             "are compiled in";
    }
  }
}

// --------------------------------------------------------------------------
// SamplingProfiler

TEST(SamplingProfiler, CollectsAndFoldsSamples) {
  SamplingProfiler profiler;
#if !defined(__linux__)
  EXPECT_FALSE(profiler.start(97));
  EXPECT_STRNE(profiler.why(), "");
  return;
#else
  ASSERT_TRUE(profiler.start(997)) << profiler.why();
  EXPECT_TRUE(profiler.running());
  // ITIMER_PROF ticks on consumed CPU time: spin until samples land (997 Hz
  // → ~1 ms of CPU each; the loop bounds total work at a few CPU-seconds).
  volatile std::uint64_t sink = 0;
  for (std::uint64_t spin = 0;
       profiler.samples_taken() < 3 && spin < 4'000'000'000ull; ++spin) {
    sink += spin;
  }
  profiler.stop();
  EXPECT_FALSE(profiler.running());
  ASSERT_GE(profiler.samples_taken(), 1u);
  const std::string folded = profiler.folded();
  ASSERT_FALSE(folded.empty());
  // Every line is "stack count\n" with a positive count.
  const std::string line = folded.substr(0, folded.find('\n'));
  const std::size_t space = line.rfind(' ');
  ASSERT_NE(space, std::string::npos) << line;
  EXPECT_GT(std::atoll(line.c_str() + space + 1), 0) << line;
#endif
}

TEST(SamplingProfiler, SecondProfilerIsRefused) {
#if defined(__linux__)
  SamplingProfiler first;
  ASSERT_TRUE(first.start(97)) << first.why();
  SamplingProfiler second;
  EXPECT_FALSE(second.start(97));
  EXPECT_STRNE(second.why(), "");
  first.stop();
  // Once the owner stopped, a new profiler may start again.
  SamplingProfiler third;
  EXPECT_TRUE(third.start(97)) << third.why();
  third.stop();
#endif
}

}  // namespace
}  // namespace profile
}  // namespace bitspread
