// The sequential engine, and its exact agreement with the birth-death chain.
#include <gtest/gtest.h>

#include <cmath>

#include "core/init.h"
#include "engine/sequential.h"
#include "markov/birth_death.h"
#include "protocols/minority.h"
#include "protocols/voter.h"
#include "stats/summary.h"

namespace bitspread {
namespace {

TEST(SequentialEngine, StepMovesAtMostOne) {
  // The structural fact behind all sequential lower bounds (§1).
  const MinorityDynamics minority(5);
  const SequentialEngine engine(minority);
  Rng rng(1);
  Configuration config{100, 50, Opinion::kOne};
  for (int t = 0; t < 2000; ++t) {
    const Configuration next = engine.step(config, rng);
    ASSERT_TRUE(next.valid());
    const std::int64_t delta = static_cast<std::int64_t>(next.ones) -
                               static_cast<std::int64_t>(config.ones);
    EXPECT_LE(std::abs(delta), 1);
    config = next;
  }
}

TEST(SequentialEngine, RunReportsActivationsAndParallelRounds) {
  const VoterDynamics voter;
  const SequentialEngine engine(voter);
  Rng rng(2);
  StopRule rule;
  rule.max_rounds = 3;  // 3 parallel rounds = 3n activations.
  const RunResult result =
      engine.run(init_half(1000, Opinion::kOne), rule, rng);
  EXPECT_EQ(result.reason, StopReason::kRoundLimit);
  EXPECT_EQ(result.activations(), 3000u);
  EXPECT_DOUBLE_EQ(result.parallel_rounds(), 3.0);
}

TEST(SequentialEngine, ConvergesOnTinyInstance) {
  const VoterDynamics voter;
  const SequentialEngine engine(voter);
  Rng rng(3);
  StopRule rule;
  rule.max_rounds = 1000000;
  const RunResult result =
      engine.run(init_all_wrong(12, Opinion::kOne), rule, rng);
  EXPECT_TRUE(result.converged());
  EXPECT_GT(result.activations(), 0u);
}

TEST(SequentialEngine, ConsensusIsAbsorbing) {
  const MinorityDynamics minority(3);
  const SequentialEngine engine(minority);
  Rng rng(4);
  Configuration config = correct_consensus(50, Opinion::kZero);
  for (int t = 0; t < 500; ++t) {
    config = engine.step(config, rng);
    EXPECT_TRUE(config.is_correct_consensus());
  }
}

TEST(SequentialEngine, MeanConvergenceTimeMatchesBirthDeathChain) {
  // Cross-validation against the EXACT expected absorption time. n is tiny
  // so sampling error is controlled.
  const VoterDynamics voter;
  const std::uint64_t n = 10;
  const std::uint64_t x0 = 5;
  const BirthDeathChain chain(voter, n, Opinion::kOne);
  const double exact =
      chain.expected_absorption_activations()[x0 - chain.min_state()];

  const SequentialEngine engine(voter);
  StopRule rule;
  rule.max_rounds = 1000000;
  RunningStats stats;
  const int kTrials = 3000;
  for (int i = 0; i < kTrials; ++i) {
    Rng rng(1000 + i);
    const RunResult result =
        engine.run(Configuration{n, x0, Opinion::kOne}, rule, rng);
    ASSERT_TRUE(result.converged());
    stats.add(static_cast<double>(result.activations()));
  }
  EXPECT_NEAR(stats.mean(), exact, 5.0 * stats.stderr_mean())
      << "exact=" << exact << " simulated=" << stats.mean();
}

TEST(SequentialEngine, TrajectoryRecordsPerParallelRound) {
  const VoterDynamics voter;
  const SequentialEngine engine(voter);
  Rng rng(5);
  StopRule rule;
  rule.max_rounds = 5;
  Trajectory trajectory;
  engine.run(init_half(100, Opinion::kOne), rule, rng, &trajectory);
  EXPECT_GE(trajectory.size(), 2u);
  EXPECT_LE(trajectory.size(), 7u);
}

TEST(SequentialEngine, DeterministicGivenSeed) {
  const MinorityDynamics minority(3);
  const SequentialEngine engine(minority);
  StopRule rule;
  rule.max_rounds = 100000;
  Rng a(6), b(6);
  const auto ra = engine.run(init_half(64, Opinion::kOne), rule, a);
  const auto rb = engine.run(init_half(64, Opinion::kOne), rule, b);
  EXPECT_EQ(ra.activations(), rb.activations());
  EXPECT_EQ(ra.final_config, rb.final_config);
}

}  // namespace
}  // namespace bitspread
