// perf_smoke — the machine-readable perf-trajectory probe (registered as a
// ctest, see bench/CMakeLists.txt).
//
// Runs the agent-level engines end-to-end on one fixed workload and writes
// BENCH_engine.json with items/sec counters, so successive PRs can diff the
// repo's throughput the same way EXPERIMENTS.md diffs its science. Kept
// deliberately small (~seconds in --quick mode): it is a smoke probe, not a
// statistics-grade benchmark — bench_micro_engine is the latter.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/init.h"
#include "engine/kernel/kernel.h"
#include "profile/pmu.h"
#include "core/stateful.h"
#include "engine/agent.h"
#include "engine/aggregate.h"
#include "engine/alpha_sync.h"
#include "engine/conflicting.h"
#include "engine/sharded.h"
#include "protocols/minority.h"
#include "sim/cli.h"
#include "sim/parallel.h"
#include "telemetry/reporter.h"

namespace bitspread {
namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct Measurement {
  std::string name;
  unsigned threads_requested = 1;
  unsigned threads = 1;  // Worker count that actually ran (post-clamping).
  double seconds = 0.0;
  double items_per_second = 0.0;
};

// Steps `engine` for `rounds` rounds and reports non-source updates/sec.
// `threads_requested` is the configured worker count (0 = auto); `threads`
// is what the pool really used for this row's fan-out width.
template <typename StepFn>
Measurement measure(const std::string& name, unsigned threads_requested,
                    unsigned threads, std::uint64_t rounds,
                    std::uint64_t items_per_round, StepFn&& step) {
  step(0);  // Warm-up round: sizes every reusable buffer.
  const auto start = std::chrono::steady_clock::now();
  for (std::uint64_t r = 0; r < rounds; ++r) step(r + 1);
  Measurement m;
  m.name = name;
  m.threads_requested = threads_requested;
  m.threads = threads;
  m.seconds = seconds_since(start);
  m.items_per_second =
      m.seconds > 0.0
          ? static_cast<double>(rounds * items_per_round) / m.seconds
          : 0.0;
  return m;
}

}  // namespace
}  // namespace bitspread

int main(int argc, char** argv) {
  using namespace bitspread;

  bool quick = std::getenv("BITSPREAD_QUICK") != nullptr;
  std::string out_path = "BENCH_engine.json";
  FlightRecorderOptions recorder_options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") quick = true;
    if (arg.rfind("--out=", 0) == 0) out_path = arg.substr(6);
    recorder_options.parse_flag(arg);
  }
  FlightRecorderScope flight_recorder(recorder_options);

  const std::uint64_t n = quick ? (1u << 14) : (1u << 17);
  const std::uint64_t rounds = quick ? 96 : 256;
  const MinorityDynamics minority(3);
  const std::uint32_t ell = minority.sample_size(n);
  const std::uint64_t updates_per_round = n - 1;  // One source never updates.
  // Affinity-aware usable-CPU count; std::thread::hardware_concurrency()
  // can report 0 or the bare-metal count inside containers.
  const unsigned hw = host_concurrency();
  const Configuration init = init_half(n, Opinion::kOne);
  // The sharded engine fans out one work item per 4096-agent block; that is
  // the clamp that decides how many workers a row can actually occupy.
  const int sharded_items = static_cast<int>(
      (n + ShardedAgentEngine::kBlockAgents - 1) /
      ShardedAgentEngine::kBlockAgents);

  std::vector<Measurement> results;

  {
    const MemorylessAsStateful adapter(minority);
    const AgentParallelEngine engine(adapter);
    auto population = engine.make_population(init);
    Rng rng(1);
    results.push_back(measure("agent_serial_step", 1, 1, rounds,
                              updates_per_round,
                              [&](std::uint64_t) { engine.step(population, rng); }));
  }
  const SeedSequence seeds(2);
  for (const unsigned threads : {1u, hw}) {
    const ShardedAgentEngine engine(minority, {.threads = threads});
    auto population = engine.make_population(init);
    const std::string name =
        threads == 1 ? "sharded_step_threads1" : "sharded_step_threads_hw";
    results.push_back(measure(name, threads,
                              planned_workers(sharded_items, threads), rounds,
                              updates_per_round, [&](std::uint64_t round) {
                                engine.step(population, round, seeds);
                                // O(1): the sharded population tracks its
                                // ones-count incrementally.
                                telemetry::record_round(
                                    round, population.count_ones(), n);
                              }));
    if (hw == 1) break;  // Both configs identical on a single-core host.
  }
  // Per-kernel-backend rows (single-threaded): the legacy per-agent loop,
  // the portable scalar-word kernel, and every SIMD backend this host can
  // run. sharded_step_threads1 above stays the kAuto headline row.
  {
    std::vector<kernel::Backend> row_backends{kernel::Backend::kLegacy};
    for (const kernel::Backend b : kernel::available_backends()) {
      row_backends.push_back(b);
    }
    for (const kernel::Backend backend : row_backends) {
      const ShardedAgentEngine engine(minority,
                                      {.threads = 1, .kernel = backend});
      auto population = engine.make_population(init);
      const std::string name =
          std::string("sharded_step_") + kernel::backend_name(backend);
      results.push_back(measure(name, 1, 1, rounds, updates_per_round,
                                [&](std::uint64_t round) {
                                  engine.step(population, round, seeds);
                                  telemetry::record_round(
                                      round, population.count_ones(), n);
                                }));
    }
  }
  const std::uint64_t agg_rounds = quick ? 20000 : 100000;
  {
    // Aggregate-engine reference: the same dynamics at O(l) per round.
    const AggregateParallelEngine engine(minority);
    Configuration config = init;
    Rng rng(3);
    results.push_back(measure("aggregate_step", 1, 1, agg_rounds, 1,
                              [&](std::uint64_t round) {
                                config = engine.step(config, rng);
                                if (config.is_consensus()) config = init;
                                telemetry::record_round(round, config.ones, n);
                              }));
  }
  {
    // Alpha-synchronous aggregate step: adds the activation-thinning draws.
    const AlphaSynchronousEngine engine(minority, 0.5);
    Configuration config = init;
    Rng rng(4);
    results.push_back(measure("alpha_sync_step", 1, 1, agg_rounds, 1,
                              [&](std::uint64_t round) {
                                config = engine.step(config, rng);
                                if (config.is_consensus()) config = init;
                                telemetry::record_round(round, config.ones, n);
                              }));
  }
  {
    // Conflicting-sources aggregate step: two camps, two binomial splits per
    // round. No reset: with both camps non-empty no consensus exists.
    const ConflictingAggregateEngine engine(minority);
    ConflictingConfiguration config{n, n / 2, 2, 2};
    Rng rng(5);
    results.push_back(measure("conflicting_step", 1, 1, agg_rounds, 1,
                              [&](std::uint64_t round) {
                                config = engine.step(config, rng);
                                telemetry::record_round(round, config.ones, n);
                              }));
  }

  const auto rate = [&results](const char* name) {
    for (const Measurement& m : results) {
      if (m.name == name) return m.items_per_second;
    }
    return 0.0;
  };
  const double serial = rate("agent_serial_step");
  const double sharded1 = rate("sharded_step_threads1");
  const double sharded_hw_rate = rate("sharded_step_threads_hw");
  // Single-core hosts skip the _hw row; fall back to the 1-thread rate so the
  // derived speedups stay well-defined (and equal) there.
  const double sharded_hw = sharded_hw_rate > 0.0 ? sharded_hw_rate : sharded1;
#ifdef NDEBUG
  const char* build_type = "Release";
#else
  const char* build_type = "Debug";
#endif

  JsonReporter reporter("engine");
  reporter.set_seed(0);  // Fixed internal seeds (1, 2, 3); no --seed knob.
  reporter.set_quick(quick);
  reporter.set_workload("protocol", JsonValue("minority"));
  reporter.set_workload("n", JsonValue(n));
  reporter.set_workload("ell", JsonValue(ell));
  reporter.set_workload("rounds", JsonValue(rounds));
  // Profiling provenance: rows must be self-describing so HISTORY.jsonl can
  // tell a PMU-attributed run from a fallback one (bench_history gates only
  // set-comparable metrics).
  const profile::PmuCounterSet& counters = profile::thread_counters();
  const bool pmu_available = counters.available();
  const bool subphase_markers = telemetry::kCompiledIn;
  JsonValue benchmarks = JsonValue::array();
  for (const Measurement& m : results) {
    JsonValue row = JsonValue::object();
    row.set("name", JsonValue(m.name));
    row.set("threads", JsonValue(m.threads));
    row.set("threads_requested", JsonValue(m.threads_requested));
    row.set("seconds", JsonValue(m.seconds));
    row.set("items_per_second", JsonValue(m.items_per_second));
    row.set("pmu_available", JsonValue(pmu_available));
    row.set("subphase_markers", JsonValue(subphase_markers));
    benchmarks.push_back(std::move(row));
    reporter.add_phase(m.name, m.seconds, rounds);
  }
  reporter.set_extra("benchmarks", std::move(benchmarks));
  JsonValue pmu_info = JsonValue::object();
  pmu_info.set("available", JsonValue(pmu_available));
  if (!pmu_available) {
    pmu_info.set("unavailable_reason",
                 JsonValue(counters.unavailable_reason()));
  }
  pmu_info.set("counters_open", JsonValue(counters.counters_open()));
  pmu_info.set("subphase_markers", JsonValue(subphase_markers));
  pmu_info.set("sampling_active", JsonValue(flight_recorder.sampling_active()));
  reporter.set_extra("pmu", std::move(pmu_info));
  JsonValue kernel_info = JsonValue::object();
  kernel_info.set("auto_backend",
                  JsonValue(kernel::backend_name(
                      kernel::resolve(kernel::Backend::kAuto))));
  JsonValue backend_names = JsonValue::array();
  for (const kernel::Backend b : kernel::available_backends()) {
    backend_names.push_back(JsonValue(kernel::backend_name(b)));
  }
  kernel_info.set("available", std::move(backend_names));
  reporter.set_extra("kernel", std::move(kernel_info));
  JsonValue derived = JsonValue::object();
  derived.set("sharded_1t_speedup_vs_agent_serial",
              JsonValue(serial > 0 ? sharded1 / serial : 0.0));
  derived.set("sharded_hw_speedup_vs_agent_serial",
              JsonValue(serial > 0 ? sharded_hw / serial : 0.0));
  const double legacy_rate = rate("sharded_step_legacy");
  derived.set("kernel_speedup_vs_legacy",
              JsonValue(legacy_rate > 0 ? sharded1 / legacy_rate : 0.0));
  reporter.set_extra("derived", std::move(derived));
  const WorkerPoolTelemetry pool = WorkerPool::shared().telemetry();
  if (pool.recorded) {
    JsonValue pool_json = JsonValue::object();
    pool_json.set("generations", JsonValue(pool.generations));
    pool_json.set("items", JsonValue(pool.items));
    pool_json.set("dispatch_seconds",
                  JsonValue(static_cast<double>(pool.dispatch_ns) * 1e-9));
    pool_json.set("mean_wake_us",
                  JsonValue(pool.generations > 0
                                ? static_cast<double>(pool.wake_ns) * 1e-3 /
                                      static_cast<double>(pool.generations)
                                : 0.0));
    pool_json.set("utilization", JsonValue(pool.utilization()));
    reporter.set_extra("worker_pool", std::move(pool_json));
  }
  if (flight_recorder.recorder() != nullptr) {
    reporter.set_flight_recorder(*flight_recorder.recorder());
  }
  if (!reporter.write_file(out_path)) return 1;

  std::cout << "perf_smoke (" << build_type << ", n=" << n << ", l=" << ell
            << ", host_concurrency=" << hw << ")\n";
  for (const Measurement& m : results) {
    std::printf("  %-26s %2u thread(s)  %10.3f M items/s\n", m.name.c_str(),
                m.threads, m.items_per_second / 1e6);
  }
  std::printf("  sharded/serial speedup: %.2fx (1 thread), %.2fx (%u threads)\n",
              serial > 0 ? sharded1 / serial : 0.0,
              serial > 0 ? sharded_hw / serial : 0.0, hw);
  const double legacy_print_rate = rate("sharded_step_legacy");
  std::printf("  kernel/legacy speedup:  %.2fx (auto backend: %s)\n",
              legacy_print_rate > 0 ? sharded1 / legacy_print_rate : 0.0,
              kernel::backend_name(kernel::resolve(kernel::Backend::kAuto)));
  std::cout << "wrote " << out_path << "\n";
#ifndef NDEBUG
  std::cout << "WARNING: Debug build — numbers are not comparable with the "
               "recorded perf trajectory.\n";
#endif
  return 0;
}
