// E6 — Figure 1 / Theorem 6: the Doob decomposition argument, measured.
//
// The proof watches Y_t = X_t - t and splits it as Y_t = M_t + A_t with M_t
// a martingale and A_t the (non-increasing, by assumption (i)) predictable
// part. We replay this on a live minority(l=3) trajectory:
//   * part 1 prints sampled rows (t, X_t, M_t + t, A_t) of one trajectory —
//     the picture of Figure 1, with Y_t pinned below M_t (Claim 7/9);
//   * part 2 verifies Claim 8's confinement |M_t - M_0| <= alpha*n over
//     T = n^{1-eps} rounds, across replicates and n;
//   * part 3 reports the observed crossing time against the floor.
// The predictable increments use the EXACT one-round drift from Eq. 4, so
// M_t is the true Doob martingale of the simulated chain.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "analysis/bounds.h"
#include "random/seeding.h"
#include "analysis/cases.h"
#include "core/problem.h"
#include "engine/aggregate.h"
#include "protocols/minority.h"
#include "sim/cli.h"
#include "sim/ascii_plot.h"
#include "sim/sweep.h"
#include "sim/table.h"
#include "telemetry/reporter.h"

namespace bitspread {
namespace {

constexpr double kEpsilon = 0.5;

struct DecompositionResult {
  double max_abs_m_deviation = 0.0;  // max_t |M_t - M_0|
  bool y_below_m_always = true;      // Claims 7/9: Y_t <= M_t throughout.
  std::uint64_t crossing_round = 0;  // 0 = never crossed within T.
};

DecompositionResult decompose(const MinorityDynamics& protocol,
                              std::uint64_t n, const CaseAnalysis& analysis,
                              std::uint64_t horizon, Rng& rng,
                              Table* sample_rows) {
  const AggregateParallelEngine engine(protocol);
  Configuration config{
      n,
      static_cast<std::uint64_t>(analysis.x0_fraction *
                                 static_cast<double>(n)),
      analysis.slow_correct};
  const std::uint64_t a3n =
      static_cast<std::uint64_t>(analysis.a3 * static_cast<double>(n));

  DecompositionResult result;
  // Y_t = X_t - t; A_t accumulates E[Y_{t+1}|Y_t] - Y_t = drift - 1;
  // M_t = Y_t - A_t, with M_0 = Y_0 = X_0.
  double a_t = 0.0;
  const double m_0 = static_cast<double>(config.ones);
  const std::uint64_t stride = std::max<std::uint64_t>(1, horizon / 8);
  for (std::uint64_t t = 0; t < horizon; ++t) {
    const double y_t = static_cast<double>(config.ones) - static_cast<double>(t);
    const double m_t = y_t - a_t;
    result.max_abs_m_deviation =
        std::max(result.max_abs_m_deviation, std::abs(m_t - m_0));
    if (y_t > m_t + 1e-9) result.y_below_m_always = false;
    if (sample_rows != nullptr && t % stride == 0) {
      sample_rows->add_row({Table::fmt(t), Table::fmt(config.ones),
                            Table::fmt(y_t, 1), Table::fmt(m_t, 1),
                            Table::fmt(a_t, 1)});
    }
    if (config.ones >= a3n && result.crossing_round == 0) {
      result.crossing_round = t;
      break;
    }
    // Predictable increment from the exact Eq. 4 drift, then the step.
    a_t += exact_one_round_drift(protocol, config) - 1.0;
    config = engine.step(config, rng);
  }
  return result;
}

void run(const BenchOptions& options) {
  print_banner("E6", "Figure 1 / Theorem 6: the Doob decomposition, measured",
               options);

  const MinorityDynamics protocol(3);

  JsonReporter reporter("thm6_martingale");
  reporter.set_experiment("E6");
  reporter.set_seed(options.seed);
  reporter.set_quick(options.quick);

  // Part 1: one annotated trajectory at n = 2^14.
  const std::uint64_t figure_start_ns = telemetry::clock_now_ns();
  {
    const std::uint64_t n = 1 << 14;
    const CaseAnalysis analysis = classify_bias(protocol, n);
    const std::uint64_t horizon =
        static_cast<std::uint64_t>(theorem6_crossing_floor(n, kEpsilon));
    Table rows({"t", "X_t", "Y_t = X_t - t", "M_t", "A_t"});
    Rng rng(SeedSequence(options.seed).derive("figure1"));
    const DecompositionResult r =
        decompose(protocol, n, analysis, horizon, rng, &rows);
    std::printf("one minority(l=3) trajectory at n = %llu, z = %d, X0 = "
                "%.3f n, horizon T = n^{1-eps} = %llu:\n",
                static_cast<unsigned long long>(n),
                to_int(analysis.slow_correct), analysis.x0_fraction,
                static_cast<unsigned long long>(horizon));
    rows.print(std::cout);
    // Render the trajectory itself (the Figure 1 picture): X_t collapses to
    // the stable mixed state and diffuses there, far below a3*n.
    {
      const AggregateParallelEngine engine(protocol);
      Rng plot_rng(SeedSequence(options.seed).derive("figure1-plot"));
      Configuration config{
          n,
          static_cast<std::uint64_t>(analysis.x0_fraction *
                                     static_cast<double>(n)),
          analysis.slow_correct};
      std::vector<double> xs;
      for (std::uint64_t t = 0; t < horizon; ++t) {
        xs.push_back(config.fraction_ones());
        config = engine.step(config, plot_rng);
      }
      PlotOptions plot_options;
      plot_options.height = 10;
      plot_options.y_label =
          "\nX_t / n over the horizon (a3 = " + Table::fmt(analysis.a3, 3) +
          " is never approached)";
      std::printf("%s", ascii_plot(xs, plot_options).c_str());
    }
    std::printf("Y_t <= M_t throughout: %s;   max |M_t - M_0| = %.1f "
                "(alpha*n = %.0f)\n\n",
                r.y_below_m_always ? "yes" : "NO",
                r.max_abs_m_deviation,
                (analysis.a3 - analysis.a2) / 4.0 * static_cast<double>(n));
    reporter.add_table("figure1_trajectory", rows);
    reporter.set_extra("figure1_y_below_m", JsonValue(r.y_below_m_always));
  }
  reporter.add_phase(
      "figure1",
      static_cast<double>(telemetry::clock_now_ns() - figure_start_ns) * 1e-9);

  // Parts 2-3: confinement and crossing across n. Claim 8's confinement
  // constant alpha = (a3-a2)/4 is tiny for this interval, so |M_t - M_0|
  // only drops below alpha*n once n^{1/4} beats the constants — push n high
  // (each round is O(1) work in the aggregate engine, so this is cheap).
  const int max_exp = options.quick ? 20 : 26;
  const int reps = options.reps_or(options.quick ? 5 : 10);
  const auto grid = power_of_two_grid(14, max_exp);
  const SeedSequence seeds(options.seed);
  reporter.set_workload("n_max", JsonValue(grid.back()));
  reporter.set_workload("reps", JsonValue(reps));
  const std::uint64_t sweep_start_ns = telemetry::clock_now_ns();

  Table table({"n", "T = n^0.5", "reps", "max|M-M0| (worst)", "alpha*n",
               "ratio", "Y<=M always", "crossed before T"});
  for (const std::uint64_t n : grid) {
    const CaseAnalysis analysis = classify_bias(protocol, n);
    const std::uint64_t horizon =
        static_cast<std::uint64_t>(theorem6_crossing_floor(n, kEpsilon));
    const double alpha_n =
        (analysis.a3 - analysis.a2) / 4.0 * static_cast<double>(n);
    double worst_dev = 0.0;
    bool always_below = true;
    int crossed = 0;
    for (int rep = 0; rep < reps; ++rep) {
      Rng rng = seeds.stream(n, rep);
      const DecompositionResult r =
          decompose(protocol, n, analysis, horizon, rng, nullptr);
      worst_dev = std::max(worst_dev, r.max_abs_m_deviation);
      always_below = always_below && r.y_below_m_always;
      crossed += r.crossing_round != 0;
    }
    table.add_row({Table::fmt(n), Table::fmt(horizon), std::to_string(reps),
                   Table::fmt(worst_dev, 1), Table::fmt(alpha_n, 0),
                   Table::fmt(worst_dev / alpha_n, 3),
                   always_below ? "yes" : "NO",
                   std::to_string(crossed) + "/" + std::to_string(reps)});
  }
  emit_table(table, options);
  std::printf(
      "\nClaims 7/9 (Y_t never jumps over M_t) hold in every replicate, and "
      "no trajectory\ncrosses a3*n before T = n^{1-eps}. Claim 8's "
      "confinement is asymptotic: the ratio\nmax|M_t - M_0| / (alpha n) "
      "shrinks like n^{-1/4} down through 1 as n grows — the\nmartingale "
      "noise sigma*sqrt(T) ~ n^{3/4} loses to alpha*n exactly as the proof "
      "needs.\n");

  reporter.add_phase(
      "confinement_sweep",
      static_cast<double>(telemetry::clock_now_ns() - sweep_start_ns) * 1e-9);
  reporter.set_extra("epsilon", JsonValue(kEpsilon));
  reporter.add_table("confinement", table);
  reporter.write_file(
      options.json_path.value_or("BENCH_thm6_martingale.json"));
}

}  // namespace
}  // namespace bitspread

int main(int argc, char** argv) {
  bitspread::run(bitspread::parse_bench_options(argc, argv));
  return 0;
}
