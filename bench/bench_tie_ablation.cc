// Ablation (DESIGN.md §6): tie-breaking policies and sample-size parity.
//
// The paper's Protocol 2 breaks the k = l/2 tie uniformly at random; the
// majority literature also uses "keep own". These choices change the bias
// polynomial — majority-with-coin is oblivious while majority-keep-own is
// not — and parity changes minority's table shape (odd l has no tie at
// all). This bench prints both effects:
//   * bias values / classification per policy;
//   * convergence behavior at matched l: minority even-vs-odd l near the
//     E4 threshold, majority tie policies in sourceless consensus (where
//     keep-own's inertia slows the tip-off from balance).
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "analysis/bias.h"
#include "analysis/cases.h"
#include "core/init.h"
#include "engine/aggregate.h"
#include "protocols/majority.h"
#include "protocols/minority.h"
#include "random/seeding.h"
#include "sim/cli.h"
#include "sim/experiment.h"
#include "sim/table.h"

namespace bitspread {
namespace {

void run(const BenchOptions& options) {
  print_banner("ablation", "tie-breaking policies and sample-size parity",
               options);
  const std::uint64_t n = options.quick ? (1 << 12) : (1 << 14);
  const int reps = options.reps_or(options.quick ? 8 : 16);
  const SeedSequence seeds(options.seed);

  // Part 1: tie policy changes the bias.
  {
    const MajorityDynamics keep(4, MajorityDynamics::TieBreak::kKeepOwn);
    const MajorityDynamics coin(4, MajorityDynamics::TieBreak::kRandom);
    Table table({"p", "F (tie=own)", "F (tie=coin)"});
    for (int i = 0; i <= 10; ++i) {
      const double p = i / 10.0;
      table.add_row({Table::fmt(p, 1),
                     Table::fmt(BiasFunction(keep, n)(p), 5),
                     Table::fmt(BiasFunction(coin, n)(p), 5)});
    }
    std::printf("majority l = 4, tie policies (oblivious iff coin):\n");
    table.print(std::cout);
    std::printf("tie=own oblivious: %s;  tie=coin oblivious: %s\n\n",
                keep.is_oblivious(n) ? "yes" : "no",
                coin.is_oblivious(n) ? "yes" : "no");
  }

  // Part 2: minority parity — even l (with its coin-flip tie) vs the odd
  // neighbors, at sample sizes around E4's empirical threshold.
  {
    Table table({"l", "parity", "solved", "mean T"});
    std::uint64_t cell = 0;
    StopRule rule;
    const double log2n = std::log2(static_cast<double>(n));
    rule.max_rounds = static_cast<std::uint64_t>(20.0 * log2n * log2n);
    for (const std::uint32_t ell : {31u, 32u, 33u, 49u, 50u, 51u, 63u, 64u,
                                    65u}) {
      const MinorityDynamics minority(ell);
      const AggregateParallelEngine engine(minority);
      const Configuration init = init_all_wrong(n, Opinion::kOne);
      const auto runner = [&](Rng& rng) {
        return engine.run(init, rule, rng);
      };
      const ConvergenceMeasurement m =
          measure_convergence(runner, seeds, cell++, reps);
      table.add_row({Table::fmt(std::uint64_t{ell}),
                     ell % 2 == 0 ? "even (tie)" : "odd",
                     std::to_string(m.converged) + "/" + std::to_string(reps),
                     m.converged > 0 ? Table::fmt(m.rounds.mean(), 1) : "-"});
    }
    std::printf("minority around the empirical threshold, n = %llu, "
                "all-wrong start:\n",
                static_cast<unsigned long long>(n));
    emit_table(table, options);
  }

  // Part 3: sourceless majority from balance — keep-own inertia vs coin.
  {
    Table table({"tie policy", "consensus reached", "mean rounds"});
    std::uint64_t cell = 100;
    for (const auto tie : {MajorityDynamics::TieBreak::kKeepOwn,
                           MajorityDynamics::TieBreak::kRandom}) {
      const MajorityDynamics majority(4, tie);
      const AggregateParallelEngine engine(majority);
      StopRule rule;
      rule.max_rounds = 100000;
      const Configuration init{n, n / 2, Opinion::kOne, 0};
      int reached = 0;
      RunningStats rounds;
      for (int rep = 0; rep < reps; ++rep) {
        Rng rng = seeds.stream(cell, rep);
        const RunResult r = engine.run(init, rule, rng);
        if (r.final_config.is_consensus()) {
          ++reached;
          rounds.add(static_cast<double>(r.rounds()));
        }
      }
      ++cell;
      table.add_row({tie == MajorityDynamics::TieBreak::kKeepOwn ? "keep own"
                                                                 : "coin",
                     std::to_string(reached) + "/" + std::to_string(reps),
                     reached > 0 ? Table::fmt(rounds.mean(), 1) : "-"});
    }
    std::printf("\nsourceless majority (l = 4) from an exact 50/50 split:\n");
    table.print(std::cout);
  }
  std::printf(
      "\nTakeaways: the tie rule changes the protocol's F_n (and whether it "
      "is oblivious),\nbut not its Case classification; minority's parity "
      "matters little away from the\nthreshold (even l is mildly slower "
      "near it); both majority tie rules tip off the\nbalanced sourceless "
      "start in ~10 rounds, keep-own marginally faster (its ties\npreserve "
      "whatever asymmetry the first fluctuation creates).\n");
}

}  // namespace
}  // namespace bitspread

int main(int argc, char** argv) {
  bitspread::run(bitspread::parse_bench_options(argc, argv));
  return 0;
}
