// E8 — Proposition 3: g_n^[0](0) = 0 and g_n^[1](l) = 1 are NECESSARY.
//
// The proof shows a protocol violating either condition cannot keep a
// consensus forever (the probability of staying decays geometrically). We
// measure exactly that: start AT the correct consensus and track, over a
// fixed horizon, (a) the fraction of rounds spent in consensus, (b) the
// deepest excursion away from it, (c) the empirical per-round escape
// probability against the geometric prediction 1 - (1 - g_violation)^n.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/problem.h"
#include "engine/aggregate.h"
#include "random/seeding.h"
#include "protocols/custom.h"
#include "protocols/minority.h"
#include "protocols/perturbed.h"
#include "protocols/voter.h"
#include "sim/cli.h"
#include "sim/table.h"

namespace bitspread {
namespace {

struct LeakStats {
  double consensus_fraction = 0.0;
  std::uint64_t deepest_excursion = 0;
  std::uint64_t first_escape = 0;  // horizon if never escaped
};

LeakStats watch_consensus(const MemorylessProtocol& protocol, std::uint64_t n,
                          Opinion z, std::uint64_t horizon, Rng& rng) {
  const AggregateParallelEngine engine(protocol);
  Configuration config = correct_consensus(n, z);
  const std::uint64_t target = config.ones;
  LeakStats stats;
  stats.first_escape = horizon;
  std::uint64_t in_consensus = 0;
  for (std::uint64_t t = 0; t < horizon; ++t) {
    config = engine.step(config, rng);
    if (config.ones == target) {
      ++in_consensus;
    } else if (stats.first_escape == horizon) {
      stats.first_escape = t + 1;
    }
    const std::uint64_t excursion =
        config.ones > target ? config.ones - target : target - config.ones;
    stats.deepest_excursion = std::max(stats.deepest_excursion, excursion);
  }
  stats.consensus_fraction =
      static_cast<double>(in_consensus) / static_cast<double>(horizon);
  return stats;
}

void run(const BenchOptions& options) {
  print_banner("E8", "Proposition 3: consensus maintenance is necessary",
               options);

  const std::uint64_t n = options.quick ? (1 << 12) : (1 << 14);
  const std::uint64_t horizon = options.quick ? 2000 : 10000;
  const SeedSequence seeds(options.seed);

  const MinorityDynamics minority(3);
  const VoterDynamics voter;
  const PerturbedProtocol noisy_small(minority, 0.001);
  const PerturbedProtocol noisy_large(minority, 0.05);
  // A protocol violating ONLY the g[1](l) = 1 side.
  const CustomProtocol half_broken({0.0, 1.0, 0.0, 1.0},
                                   {0.0, 1.0, 0.0, 0.995}, "g1(l)=0.995");

  const std::vector<const MemorylessProtocol*> protocols{
      &minority, &voter, &noisy_small, &noisy_large, &half_broken};

  Table table({"protocol", "prop3", "z", "frac rounds in consensus",
               "deepest excursion", "first escape"});
  std::uint64_t cell = 0;
  for (const MemorylessProtocol* protocol : protocols) {
    const bool compliant = proposition3_violations(*protocol, n).empty();
    for (const Opinion z : {Opinion::kOne, Opinion::kZero}) {
      Rng rng = seeds.stream(cell++);
      const LeakStats stats = watch_consensus(*protocol, n, z, horizon, rng);
      table.add_row(
          {protocol->name(), compliant ? "ok" : "VIOLATED",
           std::to_string(to_int(z)),
           Table::fmt(stats.consensus_fraction, 4),
           Table::fmt(stats.deepest_excursion),
           stats.first_escape == horizon ? "never"
                                         : Table::fmt(stats.first_escape)});
    }
  }
  emit_table(table, options);

  std::printf(
      "\nCompliant protocols hold the consensus for the whole horizon "
      "(fraction 1.0, escape\n'never'). Any violation — even epsilon = "
      "0.001, or only g[1](l) = 0.995 — leaks\nimmediately (~n * violation "
      "agents flip per round), so tau = +infinity a.s., exactly\nas the "
      "proposition argues.\n");
}

}  // namespace
}  // namespace bitspread

int main(int argc, char** argv) {
  bitspread::run(bitspread::parse_bench_options(argc, argv));
  return 0;
}
