// bench_noise_recovery — the robustness analogue of perf_smoke (registered as
// a ctest, see bench/CMakeLists.txt).
//
// Sweeps the fault grid (observation noise epsilon x zealot fraction z) for
// Voter and Minority(sqrt(n log n)) over n in {2^10..2^16}, with one source
// flip mid-run, and writes BENCH_robustness.json: initial convergence time,
// per-flip recovery time, and converged/censored/degraded counts per cell.
// Uses the exact aggregate faulty engine, so a cell's cost is rounds, not
// agents. The expected science (EXPERIMENTS.md E21): Voter's zero bias makes
// it collapse under any persistent adversary — noisy and zealot cells censor
// or degrade — while Minority's drift recovers from flips in polylog rounds
// until epsilon overwhelms the sqrt(n log n) sample.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/init.h"
#include "engine/aggregate.h"
#include "faults/environment.h"
#include "protocols/minority.h"
#include "protocols/voter.h"

namespace bitspread {
namespace {

constexpr double kQuorum = 0.9;

struct Cell {
  std::string protocol;
  std::uint64_t n = 0;
  double epsilon = 0.0;
  double zealots = 0.0;
  std::uint64_t flip_round = 0;
  std::uint64_t max_rounds = 0;
  int replicates = 0;

  int converged = 0;
  int censored = 0;
  int degraded = 0;
  // Segment 0 (initial convergence from the all-wrong start) and segment 1
  // (re-convergence after the flip), counting only recovered segments.
  int initial_recovered = 0;
  double initial_mean_rounds = 0.0;
  int post_flip_recovered = 0;
  double post_flip_mean_rounds = 0.0;
  double seconds = 0.0;
};

// Round cap per protocol: Voter needs Theta(n log n) rounds fault-free, the
// sqrt-sample Minority polylog. The caps leave a ~4x margin over the typical
// fault-free time so a censored cell is a verdict, not an artifact.
std::uint64_t voter_cap(std::uint64_t n) {
  const double cap = 4.0 * static_cast<double>(n) * std::log(static_cast<double>(n));
  return std::max<std::uint64_t>(20'000, static_cast<std::uint64_t>(cap));
}

Cell run_cell(const MemorylessProtocol& protocol, const std::string& name,
              std::uint64_t n, double epsilon, double zealots,
              std::uint64_t max_rounds, int replicates, std::uint64_t seed0) {
  Cell cell;
  cell.protocol = name;
  cell.n = n;
  cell.epsilon = epsilon;
  cell.zealots = zealots;
  cell.flip_round = max_rounds / 2;
  cell.max_rounds = max_rounds;
  cell.replicates = replicates;

  EnvironmentModel model;
  model.observation_noise = epsilon;
  model.zealot_fraction = zealots;
  model.source_flip_rounds = {cell.flip_round};
  model.convergence_quorum = kQuorum;

  StopRule rule;
  rule.max_rounds = max_rounds;

  const AggregateParallelEngine engine(protocol);
  double initial_sum = 0.0, post_flip_sum = 0.0;
  const auto start = std::chrono::steady_clock::now();
  for (int rep = 0; rep < replicates; ++rep) {
    Rng rng(seed0 + static_cast<std::uint64_t>(rep));
    const RunResult result =
        engine.run(init_all_wrong(n, Opinion::kOne), rule, model, rng);
    cell.converged += result.converged();
    cell.censored += result.censored();
    cell.degraded += result.degraded();
    if (!result.recoveries.empty() && result.recoveries[0].recovered) {
      ++cell.initial_recovered;
      initial_sum += static_cast<double>(result.recoveries[0].recovery_rounds());
    }
    if (result.recoveries.size() > 1 && result.recoveries[1].recovered) {
      ++cell.post_flip_recovered;
      post_flip_sum +=
          static_cast<double>(result.recoveries[1].recovery_rounds());
    }
  }
  cell.seconds = std::chrono::duration<double>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  if (cell.initial_recovered > 0)
    cell.initial_mean_rounds = initial_sum / cell.initial_recovered;
  if (cell.post_flip_recovered > 0)
    cell.post_flip_mean_rounds = post_flip_sum / cell.post_flip_recovered;
  return cell;
}

}  // namespace
}  // namespace bitspread

int main(int argc, char** argv) {
  using namespace bitspread;

  bool quick = std::getenv("BITSPREAD_QUICK") != nullptr;
  std::string out_path = "BENCH_robustness.json";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") quick = true;
    if (arg.rfind("--out=", 0) == 0) out_path = arg.substr(6);
  }

  const std::vector<std::uint64_t> sizes =
      quick ? std::vector<std::uint64_t>{1u << 10, 1u << 12}
            : std::vector<std::uint64_t>{1u << 10, 1u << 12, 1u << 14,
                                         1u << 16};
  const std::vector<double> eps_grid =
      quick ? std::vector<double>{0.0, 0.05}
            : std::vector<double>{0.0, 0.02, 0.05};
  const std::vector<double> zealot_grid =
      quick ? std::vector<double>{0.0, 0.1}
            : std::vector<double>{0.0, 0.05, 0.1};
  const int replicates = quick ? 2 : 5;

  const VoterDynamics voter;
  const MinorityDynamics minority(SampleSizePolicy::sqrt_n_log_n());
  struct Entry {
    const MemorylessProtocol* protocol;
    const char* name;
  };
  const std::vector<Entry> protocols = {{&voter, "voter"},
                                        {&minority, "minority_sqrt"}};

  std::vector<Cell> cells;
  std::uint64_t cell_index = 0;
  for (const Entry& entry : protocols) {
    for (const std::uint64_t n : sizes) {
      const std::uint64_t cap =
          std::strcmp(entry.name, "voter") == 0 ? voter_cap(n) : 2000;
      for (const double eps : eps_grid) {
        for (const double z : zealot_grid) {
          cells.push_back(run_cell(*entry.protocol, entry.name, n, eps, z,
                                   cap, replicates,
                                   /*seed0=*/777'000 + 1000 * cell_index));
          ++cell_index;
        }
      }
    }
  }

#ifdef NDEBUG
  const char* build_type = "Release";
#else
  const char* build_type = "Debug";
#endif

  std::ofstream out(out_path);
  out.precision(6);
  out << "{\n"
      << "  \"schema\": \"bitspread-noise-recovery/1\",\n"
      << "  \"build_type\": \"" << build_type << "\",\n"
      << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
      << "  \"quorum\": " << kQuorum << ",\n"
      << "  \"replicates\": " << replicates << ",\n"
      << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out << "    {\"protocol\": \"" << c.protocol << "\", \"n\": " << c.n
        << ", \"epsilon\": " << c.epsilon << ", \"zealots\": " << c.zealots
        << ", \"flip_round\": " << c.flip_round
        << ", \"max_rounds\": " << c.max_rounds
        << ", \"converged\": " << c.converged
        << ", \"censored\": " << c.censored
        << ", \"degraded\": " << c.degraded
        << ", \"initial_recovered\": " << c.initial_recovered
        << ", \"initial_mean_rounds\": " << c.initial_mean_rounds
        << ", \"post_flip_recovered\": " << c.post_flip_recovered
        << ", \"post_flip_mean_rounds\": " << c.post_flip_mean_rounds
        << ", \"seconds\": " << c.seconds << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  int voter_clean = 0, voter_faulty = 0, minority_clean = 0,
      minority_faulty = 0;
  int voter_clean_total = 0, voter_faulty_total = 0, minority_clean_total = 0,
      minority_faulty_total = 0;
  for (const Cell& c : cells) {
    const bool faulty = c.epsilon > 0.0 || c.zealots > 0.0;
    const bool is_voter = c.protocol == "voter";
    (is_voter ? (faulty ? voter_faulty : voter_clean)
              : (faulty ? minority_faulty : minority_clean)) += c.converged;
    (is_voter ? (faulty ? voter_faulty_total : voter_clean_total)
              : (faulty ? minority_faulty_total : minority_clean_total)) +=
        c.replicates;
  }
  auto rate = [](int ok, int total) {
    return total > 0 ? static_cast<double>(ok) / total : 0.0;
  };
  out << "  ],\n"
      << "  \"derived\": {\n"
      << "    \"voter_clean_convergence_rate\": "
      << rate(voter_clean, voter_clean_total) << ",\n"
      << "    \"voter_faulty_convergence_rate\": "
      << rate(voter_faulty, voter_faulty_total) << ",\n"
      << "    \"minority_clean_convergence_rate\": "
      << rate(minority_clean, minority_clean_total) << ",\n"
      << "    \"minority_faulty_convergence_rate\": "
      << rate(minority_faulty, minority_faulty_total) << "\n"
      << "  }\n"
      << "}\n";
  out.close();
  if (!out) {
    std::cerr << "error: could not write " << out_path << "\n";
    return 1;
  }

  std::cout << "bench_noise_recovery (" << build_type
            << ", quorum=" << kQuorum << ", flip at cap/2)\n";
  std::printf("  %-14s %7s %5s %5s | %4s %4s %4s | %12s %12s\n", "protocol",
              "n", "eps", "z", "conv", "cens", "degr", "init rounds",
              "recov rounds");
  for (const Cell& c : cells) {
    std::printf("  %-14s %7llu %5.2f %5.2f | %4d %4d %4d | %12.1f %12.1f\n",
                c.protocol.c_str(),
                static_cast<unsigned long long>(c.n), c.epsilon, c.zealots,
                c.converged, c.censored, c.degraded, c.initial_mean_rounds,
                c.post_flip_mean_rounds);
  }
  std::cout << "wrote " << out_path << "\n";
#ifndef NDEBUG
  std::cout << "WARNING: Debug build — numbers are not comparable with the "
               "recorded perf trajectory.\n";
#endif
  return 0;
}
