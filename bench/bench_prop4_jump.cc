// E9 — Proposition 4: from x <= c*n, one round cannot push the ones-count
// past y(c, l)*n = (1 - (1-c)^{l+1}/2)*n, except with probability
// <= exp(-2 sqrt(n)).
//
// For each (protocol, c): draw many independent one-round transitions from
// x = c*n and report the maximum landing fraction, the bound y(c, l), the
// number of violations (expect 0: with n = 2^16 the failure bound is
// e^{-512}), and the safety margin. Also reports the theoretical failure
// bound next to the empirical violation count.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "analysis/bounds.h"
#include "engine/aggregate.h"
#include "random/seeding.h"
#include "protocols/custom.h"
#include "protocols/minority.h"
#include "protocols/three_majority.h"
#include "protocols/voter.h"
#include "sim/cli.h"
#include "sim/table.h"
#include "telemetry/reporter.h"

namespace bitspread {
namespace {

void run(const BenchOptions& options) {
  print_banner("E9", "Proposition 4: the one-round jump bound", options);

  const std::uint64_t n = options.quick ? (1 << 14) : (1 << 16);
  const int trials = options.reps_or(options.quick ? 3000 : 20000);
  const SeedSequence seeds(options.seed);

  JsonReporter reporter("prop4_jump");
  reporter.set_experiment("E9");
  reporter.set_seed(options.seed);
  reporter.set_quick(options.quick);
  reporter.set_workload("n", JsonValue(n));
  reporter.set_workload("trials_per_cell", JsonValue(trials));
  const std::uint64_t simulate_start_ns = telemetry::clock_now_ns();

  const VoterDynamics voter;
  const MinorityDynamics minority3(3);
  const MinorityDynamics minority7(7);
  const ThreeMajorityDynamics three_majority;
  Rng proto_rng(seeds.derive("prop4-random"));
  const CustomProtocol random_proto = random_protocol(proto_rng, 5);
  const std::vector<const MemorylessProtocol*> protocols{
      &voter, &minority3, &minority7, &three_majority, &random_proto};

  Table table({"protocol", "c", "y(c,l)", "max X'/n seen", "mean X'/n",
               "violations", "P bound exp(-2 sqrt n)"});
  std::uint64_t cell = 0;
  bool any_violation = false;
  for (const MemorylessProtocol* protocol : protocols) {
    const AggregateParallelEngine engine(*protocol);
    const std::uint32_t ell = protocol->sample_size(n);
    for (const double c : {0.1, 0.25, 0.5, 0.75}) {
      const double y = proposition4_y(c, ell);
      const Configuration start{
          n, std::max<std::uint64_t>(
                 1, static_cast<std::uint64_t>(c * static_cast<double>(n))),
          Opinion::kOne};
      Rng rng = seeds.stream(cell++);
      double max_fraction = 0.0;
      double sum_fraction = 0.0;
      int violations = 0;
      for (int t = 0; t < trials; ++t) {
        const Configuration next = engine.step(start, rng);
        const double fraction = next.fraction_ones();
        max_fraction = std::max(max_fraction, fraction);
        sum_fraction += fraction;
        violations += fraction > y;
      }
      any_violation = any_violation || violations > 0;
      table.add_row({protocol->name(), Table::fmt(c, 2), Table::fmt(y, 4),
                     Table::fmt(max_fraction, 4),
                     Table::fmt(sum_fraction / trials, 4),
                     std::to_string(violations) + "/" +
                         std::to_string(trials),
                     Table::fmt(proposition4_failure(n), 12)});
    }
  }
  emit_table(table, options);
  std::printf(
      "\nviolations observed: %s (the bound's failure probability at n = "
      "%llu is ~e^{-%.0f},\nso zero violations over %d trials per cell is "
      "the expected outcome). Note how much\nslack the bound leaves — "
      "max X'/n stays far below y(c, l); Proposition 4 only needs\nthe "
      "(1-c)^l unanimity mass of opinion-0 keepers, not a tight estimate.\n",
      any_violation ? "SOME (investigate!)" : "none",
      static_cast<unsigned long long>(n),
      2.0 * std::sqrt(static_cast<double>(n)), trials);

  reporter.add_phase(
      "simulate",
      static_cast<double>(telemetry::clock_now_ns() - simulate_start_ns) *
          1e-9);
  reporter.set_extra("any_violation", JsonValue(any_violation));
  reporter.set_extra("failure_bound", JsonValue(proposition4_failure(n)));
  reporter.add_table("jump_bound", table);
  reporter.write_file(options.json_path.value_or("BENCH_prop4_jump.json"));
}

}  // namespace
}  // namespace bitspread

int main(int argc, char** argv) {
  bitspread::run(bitspread::parse_bench_options(argc, argv));
  return 0;
}
