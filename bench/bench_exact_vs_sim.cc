// E11 — Machinery validation: exact expected convergence times (dense chain
// solve for the parallel setting, birth-death solve for the sequential one)
// against replicated simulation, at small n where the O(n^3) solve is cheap.
//
// This is the experiment that certifies the simulators ARE the model: every
// simulated mean must land within a few standard errors of the exact
// expectation.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "engine/aggregate.h"
#include "random/seeding.h"
#include "engine/sequential.h"
#include "markov/absorption.h"
#include "markov/birth_death.h"
#include "markov/dense_chain.h"
#include "markov/propagation.h"
#include "markov/propagation.h"
#include "protocols/minority.h"
#include "protocols/voter.h"
#include "sim/cli.h"
#include "sim/table.h"
#include "stats/summary.h"

namespace bitspread {
namespace {

void run(const BenchOptions& options) {
  print_banner("E11", "exact Markov solves vs simulation", options);

  const int reps = options.reps_or(options.quick ? 1500 : 6000);
  const SeedSequence seeds(options.seed);

  const VoterDynamics voter;
  const MinorityDynamics minority3(3);
  struct Case {
    const MemorylessProtocol* protocol;
    std::uint64_t n;
    std::uint64_t x0;
  };
  // The last minority cell has an exact expectation near 10^6 rounds (the
  // exponential escape of Theorem 1 at work even at n = 24) — replicates are
  // scaled down per cell so every cell costs a comparable number of
  // simulated rounds.
  std::vector<Case> cases{{&voter, 16, 8},
                          {&voter, 32, 8},
                          {&minority3, 16, 8},
                          {&minority3, 20, 10}};
  if (!options.quick) cases.push_back({&minority3, 24, 18});

  Table table({"protocol", "n", "X0", "setting", "exact E[T]", "sim mean",
               "sim stderr", "|diff|/stderr"});
  std::uint64_t cell = 0;
  bool all_within = true;
  for (const Case& c : cases) {
    // Parallel: dense-chain solve, rounds.
    {
      const DenseParallelChain chain(*c.protocol, c.n, Opinion::kOne);
      const double exact =
          expected_convergence_rounds(chain)[c.x0 - chain.min_state()];
      const AggregateParallelEngine engine(*c.protocol);
      StopRule rule;
      rule.max_rounds = 100000000;
      RunningStats stats;
      const double budget = options.quick ? 3e6 : 3e7;
      const int cell_reps = std::max(
          60, std::min(reps, static_cast<int>(budget / (exact + 1.0))));
      for (int rep = 0; rep < cell_reps; ++rep) {
        Rng rng = seeds.stream(cell, rep, 0);
        const RunResult r =
            engine.run(Configuration{c.n, c.x0, Opinion::kOne}, rule, rng);
        stats.add(static_cast<double>(r.rounds()));
      }
      const double sigma = std::max(stats.stderr_mean(), 1e-9);
      const double z_score = std::abs(stats.mean() - exact) / sigma;
      all_within = all_within && z_score < 5.0;
      table.add_row({c.protocol->name(), Table::fmt(c.n), Table::fmt(c.x0),
                     "parallel", Table::fmt(exact, 3),
                     Table::fmt(stats.mean(), 3), Table::fmt(sigma, 3),
                     Table::fmt(z_score, 2)});
    }
    // Sequential: birth-death solve, activations.
    {
      const BirthDeathChain chain(*c.protocol, c.n, Opinion::kOne);
      const double exact =
          chain.expected_absorption_activations()[c.x0 - chain.min_state()];
      const SequentialEngine engine(*c.protocol);
      StopRule rule;
      rule.max_rounds = 100000000;
      RunningStats stats;
      const double budget = options.quick ? 3e6 : 3e7;
      const int cell_reps = std::max(
          60, std::min(reps, static_cast<int>(budget / (exact + 1.0))));
      for (int rep = 0; rep < cell_reps; ++rep) {
        Rng rng = seeds.stream(cell, rep, 1);
        const RunResult r =
            engine.run(Configuration{c.n, c.x0, Opinion::kOne}, rule, rng);
        stats.add(static_cast<double>(r.activations()));
      }
      const double sigma = std::max(stats.stderr_mean(), 1e-9);
      const double z_score = std::abs(stats.mean() - exact) / sigma;
      all_within = all_within && z_score < 5.0;
      table.add_row({c.protocol->name(), Table::fmt(c.n), Table::fmt(c.x0),
                     "sequential", Table::fmt(exact, 3),
                     Table::fmt(stats.mean(), 3), Table::fmt(sigma, 3),
                     Table::fmt(z_score, 2)});
    }
    ++cell;
  }
  emit_table(table, options);
  std::printf(
      "\nall simulated means within 5 standard errors of the exact "
      "expectation: %s\n(parallel exact = fundamental-matrix solve on the "
      "convolution chain; sequential\nexact = tridiagonal birth-death "
      "solve; simulators = the shipping engines).\n",
      all_within ? "YES" : "NO (investigate!)");

  // Bonus: the EXACT convergence-time law (not just its mean) from the
  // distribution-propagation module — "w.h.p." as computable numbers.
  {
    const std::uint64_t n = 32, x0 = 8;
    const DenseParallelChain chain(voter, n, Opinion::kOne);
    const std::uint64_t horizon = 2000;
    const auto cdf = convergence_cdf(chain, x0, horizon);
    Table quantiles({"P(tau <= t)", "exact t"});
    for (const double q : {0.5, 0.9, 0.99, 0.999}) {
      std::uint64_t t = horizon;
      for (std::uint64_t s = 0; s < cdf.size(); ++s) {
        if (cdf[s] >= q) {
          t = s;
          break;
        }
      }
      quantiles.add_row({Table::fmt(q, 3), Table::fmt(t)});
    }
    std::printf("\nexact convergence-time quantiles, voter, n = %llu, "
                "X0 = %llu (distribution propagation):\n",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(x0));
    quantiles.print(std::cout);
  }
}

}  // namespace
}  // namespace bitspread

int main(int argc, char** argv) {
  bitspread::run(bitspread::parse_bench_options(argc, argv));
  return 0;
}
