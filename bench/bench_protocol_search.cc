// E19 — attacking Theorem 1 head-on: search the protocol space.
//
// Theorem 1 quantifies over every g-family with constant l. We let an
// optimizer try to refute it: random sampling + exact-score hill climbing
// over Prop.-3-compliant g-tables at a calibration size, then re-measure
// the champion's scaling:
//   * exact worst-case expected convergence time across small n (solves);
//   * simulated convergence from the champion's own worst regime at large n
//     (capped) with a log-log fit.
// Expected outcome: the search recovers a voter-like (low-|F|) table — the
// best possible behavior is diffusive — and the champion's time still grows
// ~linearly. The optimizer cannot escape the theorem.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "analysis/bias.h"
#include "analysis/cases.h"
#include "analysis/search.h"
#include "core/init.h"
#include "engine/aggregate.h"
#include "protocols/voter.h"
#include "random/seeding.h"
#include "sim/cli.h"
#include "sim/experiment.h"
#include "sim/table.h"
#include "stats/regression.h"

namespace bitspread {
namespace {

void run(const BenchOptions& options) {
  print_banner("E19", "adversarial search over the protocol space", options);

  const std::uint32_t ell = 3;
  const std::uint64_t calibration_n = 20;
  const int candidates = options.quick ? 400 : 4000;
  const int climb_steps = options.quick ? 300 : 3000;

  Rng rng(SeedSequence(options.seed).derive("protocol-search"));
  const ProtocolSearchResult result =
      search_fastest_protocol(ell, calibration_n, candidates, climb_steps,
                              rng);
  const CustomProtocol champion = result.protocol("champion");
  const VoterDynamics voter(ell);

  std::printf("searched %d candidates (l = %u, calibrated at n = %llu)\n",
              result.candidates_evaluated, ell,
              static_cast<unsigned long long>(calibration_n));
  std::printf("champion g0 = [");
  for (const double v : result.g_zero) std::printf(" %.3f", v);
  std::printf(" ], g1 = [");
  for (const double v : result.g_one) std::printf(" %.3f", v);
  std::printf(" ]\n");
  const BiasFunction bias(champion, calibration_n);
  std::printf("champion bias F(p) = %s\n",
              bias.to_polynomial().to_string().c_str());
  std::printf("max |F| on [0,1] ~ %.4f (voter: 0 — low bias is exactly what "
              "the optimizer learns)\n\n",
              [&] {
                double worst = 0.0;
                for (int i = 0; i <= 100; ++i) {
                  worst = std::max(worst, std::abs(bias(i / 100.0)));
                }
                return worst;
              }());

  // Part 1: exact scaling at small n.
  Table exact_table({"n", "champion worst E[T]", "voter worst E[T]",
                     "champion/voter"});
  for (const std::uint64_t n : {16ULL, 20ULL, 24ULL, 32ULL, 40ULL}) {
    const double c = worst_case_expected_rounds(champion, n);
    const double v = worst_case_expected_rounds(voter, n);
    exact_table.add_row({Table::fmt(n), Table::fmt(c, 1), Table::fmt(v, 1),
                         Table::fmt(c / v, 2)});
  }
  std::printf("exact worst-case expected convergence times:\n");
  exact_table.print(std::cout);
  std::printf(
      "note: the champion does not beat Voter even at its own calibration "
      "size, and the\ngap widens with n — consistent with zero bias "
      "(diffusive behavior) being optimal,\nwhich is what the optimizer's "
      "shrinking |F| is converging toward.\n");

  // Part 2: simulated scaling at large n (from the all-wrong start for both
  // z, capped at 40n; censored cells reported as such).
  const int reps = options.reps_or(options.quick ? 5 : 10);
  const SeedSequence seeds(options.seed);
  Table sim_table({"n", "z", "solved", "mean T", "cap"});
  std::vector<double> ns, means;
  std::uint64_t cell = 0;
  const int max_exp = options.quick ? 12 : 14;
  for (int exp = 9; exp <= max_exp; ++exp) {
    const std::uint64_t n = std::uint64_t{1} << exp;
    for (const Opinion z : {Opinion::kOne, Opinion::kZero}) {
      const AggregateParallelEngine engine(champion);
      StopRule rule;
      rule.max_rounds = 40 * n;
      const Configuration init = init_all_wrong(n, z);
      const auto runner = [&](Rng& r) { return engine.run(init, rule, r); };
      const ConvergenceMeasurement m =
          measure_convergence(runner, seeds, cell++, reps);
      sim_table.add_row(
          {Table::fmt(n), std::to_string(to_int(z)),
           std::to_string(m.converged) + "/" + std::to_string(reps),
           m.converged > 0 ? Table::fmt(m.rounds.mean(), 1) : "censored",
           Table::fmt(rule.max_rounds)});
      if (z == Opinion::kOne && m.converged == reps) {
        ns.push_back(static_cast<double>(n));
        means.push_back(m.rounds.mean());
      }
    }
  }
  std::printf("\nchampion at scale (all-wrong start):\n");
  emit_table(sim_table, options);
  if (ns.size() >= 2) {
    const LinearFit fit = loglog_fit(ns, means);
    std::printf(
        "\nchampion scaling: T ~ %.2f * n^%.3f (R^2 = %.3f). The best "
        "protocol an exact-score\noptimizer finds still pays (at least) "
        "almost-linear time — Theorem 1 is not an\nartifact of the named "
        "dynamics but a property of the whole protocol space.\n",
        std::exp(fit.intercept), fit.slope, fit.r_squared);
  } else {
    std::printf(
        "\nchampion censored at scale: the optimizer's table is trap-like "
        "away from the\ncalibration size — even 'optimized' protocols obey "
        "the lower bound.\n");
  }
}

}  // namespace
}  // namespace bitspread

int main(int argc, char** argv) {
  bitspread::run(bitspread::parse_bench_options(argc, argv));
  return 0;
}
