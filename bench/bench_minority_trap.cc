// E17 — the trap, quantified: why E2's censored cells hide EXPONENTIAL times.
//
// The paper calls the minority dynamics' behavior "chaotic... yet to be
// fully understood". At constant l its bias F_n has a stable interior root
// (l = 3: p* = 1/2 with map slope 0), so the finite chain lives in a
// quasi-stationary cloud around p* and escapes to consensus only through an
// exponentially rare fluctuation. This bench measures the trap exactly:
//   * the quasi-stationary distribution's mean/width: mean ~ n/2 and width
//     Theta(sqrt(n)) — diffusive fluctuations around the mean-field point;
//   * the Perron eigenvalue lambda of the transient submatrix: the expected
//     escape time from quasi-stationarity is 1/(1 - lambda), and the table
//     shows log(escape time) growing LINEARLY in n — true exponential
//     slowness, far beyond the n^{1-eps} floor Theorem 1 certifies;
//   * cross-check: the exact expected absorption time from the mid state
//     (fundamental-matrix solve) tracks 1/(1 - lambda).
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "markov/absorption.h"
#include "markov/dense_chain.h"
#include "markov/quasi_stationary.h"
#include "protocols/minority.h"
#include "sim/cli.h"
#include "sim/table.h"
#include "stats/regression.h"

namespace bitspread {
namespace {

void run(const BenchOptions& options) {
  print_banner("E17",
               "the minority trap: quasi-stationary shape and exponential "
               "escape",
               options);

  // Beyond n ~ 44 the escape probability 1 - lambda sinks below double
  // precision (lambda rounds to 1.0) — the exponential wall is literally
  // unrepresentable, which is the point; the grid stops where the numerics
  // are still exact.
  const std::vector<std::uint64_t> ns =
      options.quick ? std::vector<std::uint64_t>{16, 24, 32, 40}
                    : std::vector<std::uint64_t>{16, 20, 24, 28, 32, 36, 40, 44};
  const MinorityDynamics minority(3);

  Table table({"n", "QSD mean/n", "QSD stddev", "stddev/sqrt(n)", "lambda",
               "escape 1/(1-lambda)", "exact E[T] from n/2"});
  std::vector<double> ns_d, log_escape;
  for (const std::uint64_t n : ns) {
    const DenseParallelChain chain(minority, n, Opinion::kOne);
    const QuasiStationary qsd = quasi_stationary_distribution(chain);
    const auto times = expected_convergence_rounds(chain);
    const double mid_time =
        times[n / 2 - chain.min_state()];
    const double nd = static_cast<double>(n);
    // QSD indices are state offsets; add min_state for the real mean.
    const double mean_state =
        qsd.mean() + static_cast<double>(chain.min_state());
    table.add_row({Table::fmt(n), Table::fmt(mean_state / nd, 4),
                   Table::fmt(qsd.stddev(), 2),
                   Table::fmt(qsd.stddev() / std::sqrt(nd), 3),
                   Table::fmt(qsd.lambda, 8),
                   Table::fmt(qsd.expected_escape_rounds(), 1),
                   Table::fmt(mid_time, 1)});
    ns_d.push_back(nd);
    log_escape.push_back(std::log(qsd.expected_escape_rounds()));
  }
  emit_table(table, options);

  const LinearFit fit = ols_fit(ns_d, log_escape);
  std::printf(
      "\nfit: log(escape time) ~ %.3f + %.4f * n (R^2 = %.4f) — the escape "
      "time grows like\ne^{%.4f n}: exponential, not merely the n^{1-eps} "
      "of Theorem 1. The QSD sits at\np ~ 1/2 (the stable root of F) with "
      "width Theta(sqrt n): the chain is a diffusion\nin an O(sqrt n) tube "
      "around the mean-field trap. The exact absorption times from\nn/2 "
      "track 1/(1-lambda), confirming the eigenvalue picture.\n",
      fit.intercept, fit.slope, fit.r_squared, fit.slope);
}

}  // namespace
}  // namespace bitspread

int main(int argc, char** argv) {
  bitspread::run(bitspread::parse_bench_options(argc, argv));
  return 0;
}
