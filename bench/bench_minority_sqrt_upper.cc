// E3 — The contrasting upper bound (Becchetti et al., SODA 2024): the
// minority dynamics with l >= sqrt(n ln n) solves bit-dissemination in
// O(log^2 n) rounds w.h.p.
//
// Series regenerated: convergence time vs n, from the all-wrong start for
// both source opinions, with normalizations T / log^2(n) and T / log(n)
// (the paper's bound is log^2; in practice the run is dominated by the
// "one overshoot round + cleanup" mechanism, so even T / log n is small).
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/init.h"
#include "engine/aggregate.h"
#include "random/seeding.h"
#include "protocols/minority.h"
#include "sim/cli.h"
#include "sim/experiment.h"
#include "sim/sweep.h"
#include "sim/table.h"
#include "stats/quantiles.h"

namespace bitspread {
namespace {

void run(const BenchOptions& options) {
  print_banner("E3",
               "SODA'24 upper bound: minority with l = sqrt(n ln n) is "
               "polylog-fast",
               options);

  const int max_exp = options.quick ? 16 : 22;
  const int reps = options.reps_or(options.quick ? 10 : 25);
  const auto grid = power_of_two_grid(10, max_exp);
  const SeedSequence seeds(options.seed);
  const MinorityDynamics minority(SampleSizePolicy::sqrt_n_log_n());

  Table table({"n", "l", "z", "solved", "mean T", "p90", "T/log2^2(n)",
               "max T"});
  const AggregateParallelEngine engine(minority);
  std::uint64_t cell = 0;
  bool all_solved = true;
  for (const std::uint64_t n : grid) {
    for (const Opinion z : {Opinion::kOne, Opinion::kZero}) {
      StopRule rule;
      rule.max_rounds = 100000;
      const Configuration init = init_all_wrong(n, z);
      const auto runner = [&](Rng& rng) {
        return engine.run(init, rule, rng);
      };
      const ConvergenceMeasurement m =
          measure_convergence(runner, seeds, cell++, reps);
      all_solved = all_solved && (m.converged == reps);
      const double log2n = std::log2(static_cast<double>(n));
      table.add_row({Table::fmt(n),
                     Table::fmt(std::uint64_t{minority.sample_size(n)}),
                     std::to_string(to_int(z)),
                     std::to_string(m.converged) + "/" + std::to_string(reps),
                     Table::fmt(m.rounds.mean(), 2),
                     Table::fmt(quantile(m.round_samples, 0.9), 1),
                     Table::fmt(m.rounds.mean() / (log2n * log2n), 4),
                     Table::fmt(m.rounds.max(), 0)});
    }
  }
  emit_table(table, options);
  std::printf(
      "\nall cells solved: %s. T / log^2 n stays bounded (in fact shrinks) "
      "while n grows %llux:\nthe parallel setting with a large sample size "
      "is exponentially faster than the\nconstant-l regime of E2 — the gap "
      "the paper wants to pin down.\n",
      all_solved ? "YES" : "NO",
      static_cast<unsigned long long>(grid.back() / grid.front()));
}

}  // namespace
}  // namespace bitspread

int main(int argc, char** argv) {
  bitspread::run(bitspread::parse_bench_options(argc, argv));
  return 0;
}
