// E10 — Proposition 5: |E[X_{t+1} | X_t = x] - x - n F_n(x/n)| <= 1, for
// every state x, both source opinions, any protocol.
//
// This is checked EXACTLY, not by sampling: E[X_{t+1} | X_t] comes from the
// dense transition row (convolution of two binomial pmfs), and F_n from Eq. 3.
// The table reports the maximum absolute deviation over all states — the
// paper's bound is 1, and the measured worst case is the |z(1-P_1) -
// (1-z)P_0| <= 1 source term, so deviations approach but never exceed 1.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "analysis/bias.h"
#include "markov/dense_chain.h"
#include "protocols/custom.h"
#include "protocols/minority.h"
#include "protocols/three_majority.h"
#include "protocols/two_choice.h"
#include "protocols/voter.h"
#include "random/seeding.h"
#include "sim/seeds.h"
#include "sim/cli.h"
#include "sim/table.h"
#include "telemetry/reporter.h"

namespace bitspread {
namespace {

void run(const BenchOptions& options) {
  print_banner("E10", "Proposition 5: the drift identity, exact", options);

  const std::vector<std::uint64_t> ns =
      options.quick ? std::vector<std::uint64_t>{40, 80}
                    : std::vector<std::uint64_t>{40, 80, 160, 320};

  JsonReporter reporter("prop5_drift");
  reporter.set_experiment("E10");
  reporter.set_seed(options.seed);
  reporter.set_quick(options.quick);
  reporter.set_workload("n_max", JsonValue(ns.back()));
  const std::uint64_t exact_start_ns = telemetry::clock_now_ns();

  const VoterDynamics voter;
  const MinorityDynamics minority3(3);
  const MinorityDynamics minority4(4);
  const ThreeMajorityDynamics three_majority;
  const TwoChoiceDynamics two_choice;
  Rng proto_rng(SeedSequence(master_seed_from_env()).derive("prop5-random"));
  const CustomProtocol random_proto = random_protocol(proto_rng, 4);
  const std::vector<const MemorylessProtocol*> protocols{
      &voter, &minority3, &minority4, &three_majority, &two_choice,
      &random_proto};

  Table table({"protocol", "n", "z", "max |E[X']-x-nF(x/n)|", "bound", "ok"});
  bool all_ok = true;
  for (const MemorylessProtocol* protocol : protocols) {
    for (const std::uint64_t n : ns) {
      const BiasFunction bias(*protocol, n);
      for (const Opinion z : {Opinion::kOne, Opinion::kZero}) {
        const DenseParallelChain chain(*protocol, n, z);
        double worst = 0.0;
        for (std::uint64_t x = chain.min_state(); x <= chain.max_state();
             ++x) {
          const double predicted =
              static_cast<double>(x) +
              static_cast<double>(n) *
                  bias(static_cast<double>(x) / static_cast<double>(n));
          worst = std::max(worst, std::abs(chain.row_mean(x) - predicted));
        }
        const bool ok = worst <= 1.0 + 1e-9;
        all_ok = all_ok && ok;
        table.add_row({protocol->name(), Table::fmt(n),
                       std::to_string(to_int(z)), Table::fmt(worst, 6), "1",
                       ok ? "yes" : "NO"});
      }
    }
  }
  emit_table(table, options);
  std::printf("\nProposition 5 holds exactly in every cell: %s\n",
              all_ok ? "YES" : "NO (investigate!)");

  reporter.add_phase(
      "exact_chain",
      static_cast<double>(telemetry::clock_now_ns() - exact_start_ns) * 1e-9);
  reporter.set_extra("all_ok", JsonValue(all_ok));
  reporter.add_table("drift_identity", table);
  reporter.write_file(options.json_path.value_or("BENCH_prop5_drift.json"));
}

}  // namespace
}  // namespace bitspread

int main(int argc, char** argv) {
  bitspread::run(bitspread::parse_bench_options(argc, argv));
  return 0;
}
