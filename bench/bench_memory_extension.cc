// E12 — Discussion (§5): does a little memory break the barrier?
//
// The paper conjectures the lower bound might extend to constant memory,
// while Korman & Vacus (2022) solve the problem with Theta(log log n) bits
// and l = Theta(log n). We compare, at equal sample size l = ceil(2 ln n)
// and from the all-wrong start:
//   * memory-less minority and majority (covered by the l = o(sqrt n)
//     territory where nothing fast is known);
//   * the stateful trend-follower (remembers last round's sample count:
//     ceil(log2(l+1)) bits, the budget of [7]-style protocols);
//   * the 1-bit undecided-state dynamics;
// all under the per-agent engine (the aggregate reduction does not apply to
// stateful protocols), plus memory-less Voter as the "always solves it,
// slowly" baseline.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/init.h"
#include "core/stateful.h"
#include "random/seeding.h"
#include "engine/agent.h"
#include "protocols/follow_trend.h"
#include "protocols/majority.h"
#include "protocols/minority.h"
#include "protocols/undecided.h"
#include "protocols/voter.h"
#include "sim/cli.h"
#include "sim/table.h"
#include "stats/summary.h"

namespace bitspread {
namespace {

void run(const BenchOptions& options) {
  print_banner("E12", "Discussion: bounded memory vs memory-less, equal l",
               options);

  const std::vector<int> exps = options.quick ? std::vector<int>{8, 10}
                                              : std::vector<int>{8, 10, 12};
  const int reps = options.reps_or(options.quick ? 5 : 10);
  const SeedSequence seeds(options.seed);

  Table table({"protocol", "memory", "n", "l", "solved", "mean T",
               "final ones frac"});
  std::uint64_t cell = 0;
  for (const int exp : exps) {
    const std::uint64_t n = std::uint64_t{1} << exp;
    const auto policy = SampleSizePolicy::log_n(2.0);
    const std::uint32_t ell = policy.sample_size(n);

    const VoterDynamics voter;
    const MinorityDynamics minority(policy);
    const MajorityDynamics majority(policy,
                                    MajorityDynamics::TieBreak::kKeepOwn);
    const MemorylessAsStateful voter_s(voter);
    const MemorylessAsStateful minority_s(minority);
    const MemorylessAsStateful majority_s(majority);
    const TrendFollowerDynamics trend(policy, n);
    const UndecidedStateDynamics usd;

    struct Entry {
      const StatefulProtocol* protocol;
      const char* memory;
    };
    const std::vector<Entry> entries{
        {&voter_s, "none"},
        {&minority_s, "none"},
        {&majority_s, "none"},
        {&trend, "log2(l+1) bits"},
        {&usd, "1 bit"}};

    for (const Entry& entry : entries) {
      const AgentParallelEngine engine(*entry.protocol);
      StopRule rule;
      // Polylog budget for everyone except voter, which gets its Theta(n
      // log n) due; memory should show up as solving within polylog.
      const double log2n = std::log2(static_cast<double>(n));
      rule.max_rounds =
          entry.protocol == &voter_s
              ? static_cast<std::uint64_t>(40.0 * static_cast<double>(n) *
                                           log2n)
              : static_cast<std::uint64_t>(20.0 * log2n * log2n);
      int solved = 0;
      RunningStats rounds;
      double final_fraction = 0.0;
      for (int rep = 0; rep < reps; ++rep) {
        Rng rng = seeds.stream(cell, rep);
        const RunResult r =
            engine.run(init_all_wrong(n, Opinion::kOne), rule, rng);
        if (r.converged()) {
          ++solved;
          rounds.add(static_cast<double>(r.rounds()));
        }
        final_fraction += r.final_config.fraction_ones() / reps;
      }
      ++cell;
      table.add_row({entry.protocol->name(), entry.memory, Table::fmt(n),
                     Table::fmt(std::uint64_t{ell}),
                     std::to_string(solved) + "/" + std::to_string(reps),
                     solved > 0 ? Table::fmt(rounds.mean(), 1) : "-",
                     Table::fmt(final_fraction, 3)});
    }
  }
  emit_table(table, options);
  std::printf(
      "\nbudgets: polylog (20 log^2 n) for everything except voter "
      "(40 n log n).\nWhat to look for: at l = Theta(log n) no memory-less "
      "dynamics here beats the\nbarrier from the all-wrong start, while the "
      "trend-follower's little memory lets it\nride the source's pull "
      "(simplified [7]; their exact protocol has stronger\nguarantees). "
      "USD's single bit is majority-flavored and stays pinned wrong —\n"
      "memory alone is not enough, it must implement trend detection.\n");
}

}  // namespace
}  // namespace bitspread

int main(int argc, char** argv) {
  bitspread::run(bitspread::parse_bench_options(argc, argv));
  return 0;
}
