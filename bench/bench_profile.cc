// bench_profile — the hardware-counter attribution probe (registered as a
// ctest, see bench/CMakeLists.txt).
//
// Runs the sharded engine through the RunDriver once per kernel backend
// (legacy + every backend this host can dispatch) with the PMU sink and the
// phase sink installed, and writes BENCH_profile.json: per-backend
// gather/decide/fault/commit sub-phase rows with cycles, instructions, IPC,
// and LLC-miss-per-agent-step — the numbers ROADMAP item 1 needs to steer
// the gather vectorization. See DESIGN.md §3.8 for the fallback ladder;
// on a no-PMU host the report is still valid and carries
// pmu_available:false (rows degrade to wall time + rdtsc cycles).
//
// Each backend is ALSO run without any sink installed and the final
// configurations are compared: profiling must never perturb a simulation
// (the kernel golden digests pin the same property at full depth).
#include <cstdio>
#include <cstring>
#include <deque>
#include <iostream>
#include <string>
#include <vector>

#include "core/init.h"
#include "engine/kernel/kernel.h"
#include "engine/sharded.h"
#include "engine/stopping.h"
#include "profile/counters.h"
#include "profile/pmu.h"
#include "protocols/minority.h"
#include "sim/cli.h"
#include "telemetry/reporter.h"

namespace bitspread {
namespace {

// The four kernel sub-phases, report order.
constexpr telemetry::Phase kSubPhases[] = {
    telemetry::Phase::kKernelGather,
    telemetry::Phase::kKernelFault,
    telemetry::Phase::kKernelDecide,
    telemetry::Phase::kKernelCommit,
};

struct BackendProfile {
  kernel::Backend backend = kernel::Backend::kLegacy;
  double seconds = 0.0;
  std::uint64_t agent_steps = 0;
  std::uint64_t final_ones = 0;
  bool identical_unprofiled = false;
  telemetry::PhaseStats phases;
  profile::PmuPhaseStats pmu;
  // Whole-run counter delta of the driver thread (meaningful in every
  // build; exact for this bench because it runs threads=1 workloads whose
  // pool inlines single-item generations onto the caller).
  profile::CounterDelta total;
};

}  // namespace
}  // namespace bitspread

int main(int argc, char** argv) {
  using namespace bitspread;

  BenchOptions options = parse_bench_options(argc, argv);
  const std::string out_path =
      options.json_path.value_or("BENCH_profile.json");
  FlightRecorderScope flight_recorder(options.recorder);

  const std::uint64_t n = options.quick ? (1u << 14) : (1u << 16);
  const std::uint64_t rounds = options.quick ? 64 : 256;
  const MinorityDynamics minority(3);
  const std::uint32_t ell = minority.sample_size(n);
  const Configuration init = init_half(n, Opinion::kOne);
  // Fixed work: never stop on consensus, so every backend runs exactly
  // `rounds` rounds and rows are load-comparable.
  StopRule rule;
  rule.max_rounds = rounds;
  rule.stop_on_any_consensus = false;
  const std::uint64_t seed = options.seed != 0 ? options.seed : 7;

  profile::PmuCounterSet& counters = profile::thread_counters();
  const bool pmu_available = counters.available();

  std::vector<kernel::Backend> backends{kernel::Backend::kLegacy};
  for (const kernel::Backend b : kernel::available_backends()) {
    backends.push_back(b);
  }

  // deque: BackendProfile embeds atomics (immovable); elements are built in
  // place and never relocated.
  std::deque<BackendProfile> profiles;
  for (const kernel::Backend backend : backends) {
    const ShardedAgentEngine engine(minority, {.threads = 1, .kernel = backend});

    // Reference run, no sinks: the payload profiling must not perturb.
    const RunResult reference = engine.run(init, rule, seed);

    BackendProfile& profile = profiles.emplace_back();
    profile.backend = backend;
    telemetry::install_phase_sink(&profile.phases);
    profile::install_pmu_sink(&profile.pmu);
    profile::CounterSnapshot begin;
    profile::CounterSnapshot end;
    counters.read(begin);
    const auto start = telemetry::clock_now_ns();
    const RunResult result = engine.run(init, rule, seed);
    profile.seconds =
        static_cast<double>(telemetry::clock_now_ns() - start) * 1e-9;
    counters.read(end);
    profile::install_pmu_sink(nullptr);
    telemetry::install_phase_sink(nullptr);

    profile.total = counters.delta(begin, end);
    profile.agent_steps = result.rounds() * (n - init.sources);
    profile.final_ones = result.final_config.ones;
    profile.identical_unprofiled =
        result.final_config.ones == reference.final_config.ones &&
        result.ticks == reference.ticks;
    if (!profile.identical_unprofiled) {
      std::cerr << "FATAL: profiled run diverged from unprofiled run on "
                << kernel::backend_name(backend) << "\n";
      return 1;
    }
  }

  // Sub-phase markers exist when the probes are compiled in AND the backend
  // actually ran the word-parallel kernel (the legacy loop has none).
  const auto has_markers = [](const BackendProfile& p) {
    return telemetry::kCompiledIn && p.backend != kernel::Backend::kLegacy;
  };

  JsonReporter reporter("profile");
  reporter.set_seed(seed);
  reporter.set_quick(options.quick);
  reporter.set_workload("protocol", JsonValue("minority"));
  reporter.set_workload("n", JsonValue(n));
  reporter.set_workload("ell", JsonValue(ell));
  reporter.set_workload("rounds", JsonValue(rounds));

  JsonValue pmu_info = JsonValue::object();
  pmu_info.set("available", JsonValue(pmu_available));
  if (!pmu_available) {
    pmu_info.set("unavailable_reason", JsonValue(counters.unavailable_reason()));
  }
  pmu_info.set("counters_open", JsonValue(counters.counters_open()));
  pmu_info.set("subphase_markers", JsonValue(telemetry::kCompiledIn));
  pmu_info.set("sampling_active", JsonValue(flight_recorder.sampling_active()));
  reporter.set_extra("pmu", std::move(pmu_info));

  JsonValue rows = JsonValue::array();
  for (const BackendProfile& p : profiles) {
    JsonValue row = JsonValue::object();
    row.set("backend", JsonValue(kernel::backend_name(p.backend)));
    row.set("pmu_available", JsonValue(pmu_available));
    row.set("subphase_markers", JsonValue(has_markers(p)));
    row.set("seconds", JsonValue(p.seconds));
    row.set("agent_steps", JsonValue(p.agent_steps));
    row.set("agent_steps_per_second",
            JsonValue(p.seconds > 0.0
                          ? static_cast<double>(p.agent_steps) / p.seconds
                          : 0.0));
    row.set("identical_to_unprofiled", JsonValue(p.identical_unprofiled));

    // Whole-run driver-thread totals (every build, every host).
    JsonValue total = JsonValue::object();
    total.set("wall_seconds", JsonValue(static_cast<double>(p.total.wall_ns) * 1e-9));
    for (int c = 0; c < profile::kCounterCount; ++c) {
      if (!p.total.valid[static_cast<std::size_t>(c)]) continue;
      total.set(profile::counter_name(static_cast<profile::Counter>(c)),
                JsonValue(p.total.value[static_cast<std::size_t>(c)]));
    }
    if (p.total.ipc() > 0.0) total.set("ipc", JsonValue(p.total.ipc()));
    if (p.total.multiplexed) total.set("multiplexed", JsonValue(true));
    row.set("run_total", std::move(total));

    // The gather/fault/decide/commit split (telemetry builds, kernel rows).
    if (has_markers(p)) {
      double kernel_wall = 0.0;
      for (const telemetry::Phase phase : kSubPhases) {
        kernel_wall += p.phases.total_seconds(phase);
      }
      JsonValue subs = JsonValue::array();
      for (const telemetry::Phase phase : kSubPhases) {
        JsonValue sub = JsonValue::object();
        // "kernel_gather" -> "gather": rows read like the ISSUE vocabulary.
        const char* name = telemetry::phase_name(phase);
        sub.set("sub_phase", JsonValue(std::strncmp(name, "kernel_", 7) == 0
                                           ? name + 7
                                           : name));
        const double wall = p.phases.total_seconds(phase);
        sub.set("wall_seconds", JsonValue(wall));
        sub.set("wall_share",
                JsonValue(kernel_wall > 0.0 ? wall / kernel_wall : 0.0));
        sub.set("samples", JsonValue(p.pmu.samples(phase)));
        for (int c = 0; c < profile::kCounterCount; ++c) {
          const auto counter = static_cast<profile::Counter>(c);
          if (!p.pmu.counted(phase, counter)) continue;
          sub.set(profile::counter_name(counter),
                  JsonValue(p.pmu.total(phase, counter)));
        }
        if (p.pmu.pmu_backed()) {
          const double ipc = p.pmu.ipc(phase);
          if (ipc > 0.0) sub.set("ipc", JsonValue(ipc));
          if (p.pmu.counted(phase, profile::Counter::kLlcMisses) &&
              p.agent_steps > 0) {
            sub.set("llc_miss_per_agent_step",
                    JsonValue(static_cast<double>(p.pmu.total(
                                  phase, profile::Counter::kLlcMisses)) /
                              static_cast<double>(p.agent_steps)));
          }
          if (p.pmu.counted(phase, profile::Counter::kLlcMisses) &&
              p.pmu.counted(phase, profile::Counter::kInstructions) &&
              p.pmu.total(phase, profile::Counter::kInstructions) > 0) {
            sub.set("mpki",
                    JsonValue(1000.0 *
                              static_cast<double>(p.pmu.total(
                                  phase, profile::Counter::kLlcMisses)) /
                              static_cast<double>(p.pmu.total(
                                  phase, profile::Counter::kInstructions))));
          }
        }
        subs.push_back(std::move(sub));
      }
      row.set("sub_phases", std::move(subs));
    }

    // Full per-phase dump (driver phases + sub-phases) for tooling.
    row.set("pmu_phases",
            profile::pmu_stats_to_json(p.pmu, pmu_available,
                                       counters.unavailable_reason()));
    rows.push_back(std::move(row));

    reporter.add_phase(std::string("profile_") +
                           kernel::backend_name(p.backend),
                       p.seconds, rounds);
  }
  reporter.set_extra("profiles", std::move(rows));
  if (flight_recorder.recorder() != nullptr) {
    reporter.set_flight_recorder(*flight_recorder.recorder());
  }
  if (!reporter.write_file(out_path)) return 1;

  std::cout << "bench_profile (n=" << n << ", l=" << ell
            << ", rounds=" << rounds << ", pmu="
            << (pmu_available ? "available" : "fallback") << ", markers="
            << (telemetry::kCompiledIn ? "on" : "off") << ")\n";
  for (const BackendProfile& p : profiles) {
    std::printf("  %-12s %8.3f M agent-steps/s\n",
                kernel::backend_name(p.backend),
                p.seconds > 0.0
                    ? static_cast<double>(p.agent_steps) / p.seconds / 1e6
                    : 0.0);
    if (!has_markers(p)) continue;
    double kernel_wall = 0.0;
    for (const telemetry::Phase phase : kSubPhases) {
      kernel_wall += p.phases.total_seconds(phase);
    }
    for (const telemetry::Phase phase : kSubPhases) {
      const double wall = p.phases.total_seconds(phase);
      std::printf("    %-14s %6.1f%%  %.4fs\n", telemetry::phase_name(phase),
                  kernel_wall > 0.0 ? 100.0 * wall / kernel_wall : 0.0, wall);
    }
  }
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
