// E18 — how much synchrony does the minority mechanism need?
//
// The paper's dichotomy: fully parallel updates let minority (with l =
// sqrt(n ln n)) finish in polylog rounds, while fully sequential updates
// make it hopeless. The alpha-synchronous scheduler interpolates: each
// round an independent alpha-fraction of agents updates. This bench sweeps
// alpha and reports the convergence time in EFFECTIVE parallel rounds
// (alpha-rounds * alpha = expected activations / n), from the all-wrong
// start — locating the synchrony threshold the dichotomy hides.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/init.h"
#include "engine/alpha_sync.h"
#include "protocols/minority.h"
#include "protocols/voter.h"
#include "random/seeding.h"
#include "sim/cli.h"
#include "sim/experiment.h"
#include "sim/table.h"

namespace bitspread {
namespace {

void run(const BenchOptions& options) {
  print_banner("E18",
               "alpha-synchrony: interpolating the sequential/parallel "
               "dichotomy",
               options);

  const std::uint64_t n = options.quick ? (1 << 12) : (1 << 14);
  const int reps = options.reps_or(options.quick ? 5 : 10);
  const SeedSequence seeds(options.seed);
  const MinorityDynamics minority(SampleSizePolicy::sqrt_n_log_n());
  const VoterDynamics voter;

  // Dense near alpha = 1: a first pass showed the minority mechanism
  // already collapsing at alpha = 0.9, so the interesting action is in the
  // last few percent of synchrony.
  const std::vector<double> alphas{1.0,  0.999, 0.995, 0.99, 0.97,
                                   0.95, 0.9,   0.7,   0.5,  0.1};

  Table table({"protocol", "alpha", "solved", "mean alpha-rounds",
               "effective parallel rounds"});
  std::uint64_t cell = 0;
  for (const MemorylessProtocol* protocol :
       std::vector<const MemorylessProtocol*>{&minority, &voter}) {
    for (const double alpha : alphas) {
      const AlphaSynchronousEngine engine(*protocol, alpha);
      StopRule rule;
      // Budget: generous polylog for minority, ~n log n for voter, divided
      // by alpha so every alpha gets the same activation budget.
      const double log2n = std::log2(static_cast<double>(n));
      const double base_budget =
          protocol == &voter ? 40.0 * static_cast<double>(n) * log2n
                             : 60.0 * log2n * log2n;
      rule.max_rounds = static_cast<std::uint64_t>(base_budget / alpha);
      const Configuration init = init_all_wrong(n, Opinion::kOne);
      const auto runner = [&](Rng& rng) {
        return engine.run(init, rule, rng);
      };
      const ConvergenceMeasurement m =
          measure_convergence(runner, seeds, cell++, reps);
      table.add_row(
          {protocol->name(), Table::fmt(alpha, 3),
           std::to_string(m.converged) + "/" + std::to_string(reps),
           m.converged > 0 ? Table::fmt(m.rounds.mean(), 1) : "-",
           m.converged > 0 ? Table::fmt(m.rounds.mean() * alpha, 1)
                           : (">" + Table::fmt(
                                  static_cast<double>(rule.max_rounds) * alpha,
                                  0))});
    }
  }
  emit_table(table, options);
  std::printf(
      "\nVoter is alpha-indifferent (its per-activation behavior doesn't "
      "depend on who\nelse moves). Minority is the opposite: where the "
      "polylog mechanism survives, the\neffective time barely grows; below "
      "the threshold it collapses to censored runs —\nthe 'power of "
      "synchronicity' is not a 0/1 property of parallel vs sequential "
      "but\na quantitative threshold in alpha, which this table locates "
      "empirically.\n");
}

}  // namespace
}  // namespace bitspread

int main(int argc, char** argv) {
  bitspread::run(bitspread::parse_bench_options(argc, argv));
  return 0;
}
