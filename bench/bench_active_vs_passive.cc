// E20 — §1.3's model boundary: active vs passive communication.
//
// The paper's hardness is specifically about PASSIVE communication (agents
// expose only their opinion). Population protocols ([22]) exchange full
// states pairwise; with one extra "informed" bit, bit-dissemination becomes
// an epidemic and finishes in Theta(log n) parallel time. This bench puts
// the three regimes side by side at matched n from the all-wrong start:
//   * passive, memory-less, constant l (minority l=3): stalled (Theorem 1);
//   * passive, memory-less, l = 1 (voter): ~n log n rounds (Theorem 2);
//   * active pairwise exchange (epidemic): ~log n rounds.
// It also shows why [22] needed real machinery: the naive epidemic is NOT
// self-stabilizing — planting falsely-informed wrong-opinion agents locks
// in the wrong consensus.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/init.h"
#include "engine/aggregate.h"
#include "population/protocols.h"
#include "protocols/minority.h"
#include "protocols/voter.h"
#include "random/seeding.h"
#include "sim/cli.h"
#include "sim/experiment.h"
#include "sim/sweep.h"
#include "sim/table.h"
#include "stats/regression.h"
#include "stats/summary.h"

namespace bitspread {
namespace {

void run(const BenchOptions& options) {
  print_banner("E20", "active vs passive communication: the model boundary",
               options);

  const int max_exp = options.quick ? 12 : 15;
  const int reps = options.reps_or(options.quick ? 5 : 10);
  const auto grid = power_of_two_grid(8, max_exp);
  const SeedSequence seeds(options.seed);

  Table table({"n", "epidemic (active)", "epidemic/log2(n)",
               "voter (passive)", "minority l=3 (passive)"});
  std::vector<double> ns, epidemic_means;
  std::uint64_t cell = 0;
  for (const std::uint64_t n : grid) {
    const double log2n = std::log2(static_cast<double>(n));

    // Active: epidemic with the informed bit.
    const EpidemicProtocol epidemic;
    const PopulationEngine population_engine(epidemic);
    RunningStats epidemic_rounds;
    for (int rep = 0; rep < reps; ++rep) {
      Rng rng = seeds.stream(cell, rep, 0);
      auto population = population_engine.make_population(
          n, Opinion::kOne, /*initial_ones=*/1);
      StopRule rule;
      rule.max_rounds = 100000;
      const RunResult r =
          population_engine.run(population, rule, rng);
      epidemic_rounds.add(r.parallel_rounds());
    }

    // Passive baselines (aggregate engine, same start).
    const VoterDynamics voter;
    const AggregateParallelEngine voter_engine(voter);
    StopRule voter_rule;
    voter_rule.max_rounds = static_cast<std::uint64_t>(
        60.0 * static_cast<double>(n) * std::log(static_cast<double>(n)));
    const Configuration init = init_all_wrong(n, Opinion::kOne);
    const auto voter_runner = [&](Rng& rng) {
      return voter_engine.run(init, voter_rule, rng);
    };
    const ConvergenceMeasurement voter_m =
        measure_convergence(voter_runner, seeds, cell + 100000, reps);

    const MinorityDynamics minority(3);
    const AggregateParallelEngine minority_engine(minority);
    StopRule minority_rule;
    minority_rule.max_rounds = 40 * n;
    const auto minority_runner = [&](Rng& rng) {
      return minority_engine.run(init, minority_rule, rng);
    };
    const ConvergenceMeasurement minority_m =
        measure_convergence(minority_runner, seeds, cell + 200000, reps);
    ++cell;

    table.add_row(
        {Table::fmt(n), Table::fmt(epidemic_rounds.mean(), 2),
         Table::fmt(epidemic_rounds.mean() / log2n, 3),
         voter_m.converged == reps ? Table::fmt(voter_m.rounds.mean(), 0)
                                   : "partial",
         minority_m.converged == 0
             ? ">" + Table::fmt(minority_rule.max_rounds) + " (censored)"
             : Table::fmt(minority_m.rounds.mean(), 0)});
    ns.push_back(static_cast<double>(n));
    epidemic_means.push_back(epidemic_rounds.mean());
  }
  emit_table(table, options);

  const LinearFit fit = loglog_fit(ns, epidemic_means);
  std::printf(
      "\nepidemic scaling exponent: %.3f (log-time: near 0 on a log-log "
      "fit; the\nepidemic/log2(n) column is the honest constant). Active "
      "pairwise exchange beats\nthe passive lower bound by an exponential "
      "margin — the barrier is passivity.\n",
      fit.slope);

  // The catch: the naive epidemic is not self-stabilizing.
  {
    const EpidemicProtocol epidemic;
    const PopulationEngine engine(epidemic);
    const std::uint64_t n = 1 << (options.quick ? 10 : 12);
    Rng rng = seeds.stream(999);
    // Adversarial init: half the non-source agents are falsely "informed"
    // of the WRONG opinion.
    auto population =
        engine.make_population(n, Opinion::kOne, /*initial_ones=*/1);
    for (std::uint64_t i = 1; i < n / 2; ++i) {
      population.states[i] = 0 | EpidemicProtocol::kInformedBit;  // Wrong, "informed".
    }
    StopRule rule;
    rule.max_rounds = 2000;
    rule.stop_on_any_consensus = false;
    const RunResult r = engine.run(population, rule, rng);
    std::printf(
        "\nself-stabilization check: with n/2 falsely-informed wrong-opinion "
        "agents planted,\nthe epidemic ends at %.3f fraction correct after "
        "%g parallel rounds (never converges:\nfalsely-informed agents are "
        "absorbing too). This failure is exactly why [22] needs\nits "
        "emergent-signal machinery — and why the paper treats "
        "self-stabilization + passivity\nas the defining constraints.\n",
        r.final_config.fraction_ones(), r.parallel_rounds());
  }
}

}  // namespace
}  // namespace bitspread

int main(int argc, char** argv) {
  bitspread::run(bitspread::parse_bench_options(argc, argv));
  return 0;
}
