// E5 — Figures 2 & 3 analogue: the bias-polynomial landscape of §4.2.
//
// For each protocol, regenerate the data behind the proof illustrations:
//   * the polynomial F_n(p) itself (power form) and a value series over a
//     grid of p in [0,1] (the curve the figures draw);
//   * its roots in [0,1] (the r^(k) of Theorem 12);
//   * the Case 1 / Case 2 classification on the last root-free interval,
//     with the interval constants a1 < a2 < a3 and the adversarial (z, X_0)
//     the proof derives from them.
#include <cstdio>
#include <iostream>
#include <sstream>
#include <vector>

#include "analysis/bias.h"
#include "analysis/cases.h"
#include "protocols/custom.h"
#include "protocols/majority.h"
#include "protocols/minority.h"
#include "protocols/three_majority.h"
#include "protocols/two_choice.h"
#include "protocols/voter.h"
#include "random/seeding.h"
#include "sim/cli.h"
#include "sim/ascii_plot.h"
#include "sim/table.h"

namespace bitspread {
namespace {

void run(const BenchOptions& options) {
  print_banner("E5", "Figures 2-3: bias polynomials, roots, case structure",
               options);
  constexpr std::uint64_t kN = 1 << 16;

  const VoterDynamics voter;
  const MinorityDynamics minority3(3);
  const MinorityDynamics minority4(4);
  const MinorityDynamics minority7(7);
  const ThreeMajorityDynamics three_majority;
  const TwoChoiceDynamics two_choice;
  const MajorityDynamics majority5(5, MajorityDynamics::TieBreak::kKeepOwn);
  Rng proto_rng(SeedSequence(options.seed).derive("bias-random"));
  const CustomProtocol random_a = random_protocol(proto_rng, 3);
  const CustomProtocol random_b = random_protocol(proto_rng, 5);

  const std::vector<const MemorylessProtocol*> protocols{
      &voter,        &minority3, &minority4, &minority7, &three_majority,
      &two_choice,   &majority5, &random_a,  &random_b};

  // Part 1: the F_n(p) curves (what Figures 2-3 plot).
  Table curve({"p", "voter", "minority3", "minority7", "3-majority",
               "2-choice", "majority5"});
  const std::vector<const MemorylessProtocol*> curve_protocols{
      &voter, &minority3, &minority7, &three_majority, &two_choice,
      &majority5};
  for (int i = 0; i <= 20; ++i) {
    const double p = i / 20.0;
    std::vector<std::string> row{Table::fmt(p, 2)};
    for (const MemorylessProtocol* protocol : curve_protocols) {
      row.push_back(Table::fmt(BiasFunction(*protocol, kN)(p), 4));
    }
    curve.add_row(std::move(row));
  }
  std::printf("F_n(p) value series (the curves of Figures 2-3):\n");
  curve.print(std::cout);

  // Render the two emblematic curves like the paper's figures: minority
  // (Case 1) and 3-majority (Case 2) are sign mirrors of each other.
  for (const MemorylessProtocol* protocol :
       {static_cast<const MemorylessProtocol*>(&minority3),
        static_cast<const MemorylessProtocol*>(&three_majority)}) {
    std::vector<double> values;
    for (int i = 0; i <= 72; ++i) {
      values.push_back(BiasFunction(*protocol, kN)(i / 72.0));
    }
    PlotOptions plot_options;
    plot_options.height = 10;
    plot_options.y_label = "\nF_n(p) for " + protocol->name() +
                           "  (x axis: p from 0 to 1)";
    std::printf("%s", ascii_plot(values, plot_options).c_str());
  }

  // Part 2: roots and classification.
  Table table({"protocol", "F_n(p)", "roots in [0,1]", "case", "interval",
               "z*", "X0/n", "direction"});
  for (const MemorylessProtocol* protocol : protocols) {
    const BiasFunction bias(*protocol, kN);
    const CaseAnalysis analysis = classify_bias(*protocol, kN);
    std::ostringstream roots;
    if (bias.is_identically_zero()) {
      roots << "(F == 0)";
    } else {
      for (const double r : bias.roots()) {
        roots << Table::fmt(r, 3) << " ";
      }
    }
    std::ostringstream interval;
    interval << "(" << Table::fmt(analysis.interval_lo, 3) << ", "
             << Table::fmt(analysis.interval_hi, 3) << ")";
    std::string poly = bias.to_polynomial().to_string();
    if (poly.size() > 46) poly = poly.substr(0, 43) + "...";
    table.add_row({protocol->name(), poly, roots.str(),
                   to_string(analysis.bias_case), interval.str(),
                   std::to_string(to_int(analysis.slow_correct)),
                   Table::fmt(analysis.x0_fraction, 3),
                   analysis.upward ? "up past a3" : "down past a1"});
  }
  std::printf("\nroot structure and Case 1/2 classification (Theorem 12's "
              "construction):\n");
  emit_table(table, options);
  std::printf(
      "\nReading guide: Voter's F vanishes identically (Lemma 11). Minority "
      "is Case 1\n(F < 0 right of its middle root: it fights a large "
      "one-majority, so z = 1 is the\nslow instance, Figure 2); majority-"
      "family dynamics are Case 2 (F > 0 there: they\namplify the majority, "
      "so z = 0 is slow, Figure 3).\n");
}

}  // namespace
}  // namespace bitspread

int main(int argc, char** argv) {
  bitspread::run(bitspread::parse_bench_options(argc, argv));
  return 0;
}
