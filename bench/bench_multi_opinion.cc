// E16 — footnote 2: more than two opinions.
//
// The paper notes the lower bound extends to any number of opinions under
// the no-spontaneous-adoption rule, by reducing a binary initial
// configuration to Theorem 1. This bench exhibits both halves:
//   * the reduction: with only opinions {0,1} populated, the k-opinion
//     engines reproduce the binary dynamics exactly (adoption distributions
//     shown side by side);
//   * genuinely k-ary behavior: k-minority with constant l from a symmetric
//     k-way split — the dynamics hovers at the symmetric mixed state (the
//     interior trap generalizes), while k-voter with a source still solves
//     the problem, slowly.
#include <cstdio>
#include <iostream>
#include <vector>

#include "multi/configuration.h"
#include "multi/engine.h"
#include "multi/protocols.h"
#include "protocols/minority.h"
#include "random/seeding.h"
#include "sim/cli.h"
#include "sim/table.h"
#include "stats/summary.h"

namespace bitspread {
namespace {

void run(const BenchOptions& options) {
  print_banner("E16", "footnote 2: the multi-opinion generalization",
               options);

  const SeedSequence seeds(options.seed);

  // Part 1: the reduction table.
  {
    const std::uint32_t ell = 3;
    const MultiMinority multi(3, ell);
    const MinorityDynamics binary(ell);
    const MultiAggregateEngine engine(multi);
    Table table({"p (frac of opinion 1)", "binary P(adopt 1)",
                 "multi q[1]", "multi q[2] (unseen)"});
    const std::uint64_t n = 100000;
    for (int i = 1; i < 10; ++i) {
      const double p = i / 10.0;
      const MultiConfiguration config =
          embed_binary(n, static_cast<std::uint64_t>(p * n), 1, 3);
      const auto q = engine.adoption_distribution(0, config);
      table.add_row({Table::fmt(p, 1),
                     Table::fmt(binary.aggregate_adoption(
                                    Opinion::kZero, config.fraction(1), n),
                                6),
                     Table::fmt(q[1], 6), Table::fmt(q[2], 9)});
    }
    std::printf("the binary reduction (3 opinions, {0,1} populated, "
                "k-minority l=3):\n");
    table.print(std::cout);
    std::printf("\n");
  }

  // Part 2: k-ary behavior from a symmetric split.
  {
    const int reps = options.reps_or(options.quick ? 5 : 10);
    const std::uint64_t n = options.quick ? 3000 : 30000;
    Table table({"protocol", "m", "start", "budget", "solved",
                 "mean T", "final correct frac"});
    std::uint64_t cell = 0;
    for (const std::uint32_t m : {3u, 4u}) {
      const MultiMinority minority(m, 3);
      const MultiVoter voter(m);
      struct Entry {
        const MultiOpinionProtocol* protocol;
        std::uint64_t budget;
      };
      for (const Entry& entry :
           {Entry{&minority, 20000},
            Entry{&voter, 4000000ULL / 4}}) {  // Voter needs ~n log n.
        const MultiAggregateEngine engine(*entry.protocol);
        MultiConfiguration start;
        start.counts.assign(m, n / m);
        start.counts[0] += n - (n / m) * m;
        start.correct = 0;
        start.sources = 1;
        StopRule rule;
        rule.max_rounds = entry.budget;
        int solved = 0;
        RunningStats rounds;
        double final_fraction = 0.0;
        for (int rep = 0; rep < reps; ++rep) {
          Rng rng = seeds.stream(cell, rep);
          const MultiRunResult result = engine.run(start, rule, rng);
          if (result.converged()) {
            ++solved;
            rounds.add(static_cast<double>(result.rounds));
          }
          final_fraction += result.final_config.fraction(0) / reps;
        }
        ++cell;
        table.add_row({entry.protocol->name(), Table::fmt(std::uint64_t{m}),
                       "even split", Table::fmt(entry.budget),
                       std::to_string(solved) + "/" + std::to_string(reps),
                       solved > 0 ? Table::fmt(rounds.mean(), 1) : "-",
                       Table::fmt(final_fraction, 3)});
      }
    }
    std::printf("k-ary dynamics from an even split (source holds opinion 0, "
                "n = %llu):\n",
                static_cast<unsigned long long>(n));
    emit_table(table, options);
  }
  std::printf(
      "\nThe reduction columns agree to full precision and the unseen "
      "opinion never gets\nmass — so binary lower bounds transfer verbatim. "
      "In genuinely k-ary runs,\nk-minority with constant l stays trapped "
      "at the symmetric mix (the Theorem 1\nphenomenon, now with a "
      "(1/m,...,1/m) trap), while k-voter still solves the\nproblem in "
      "voter time.\n");
}

}  // namespace
}  // namespace bitspread

int main(int argc, char** argv) {
  bitspread::run(bitspread::parse_bench_options(argc, argv));
  return 0;
}
