// E13 — engine micro-benchmarks (google-benchmark).
//
// Quantifies the design choices DESIGN.md §6 calls out:
//   * the aggregate engine's O(1)-in-n round vs the agent engine's O(n*l);
//   * closed-form aggregate adoption (Voter, Minority, 3-majority) vs the
//     generic Eq. 4 summation;
//   * the cost of the sqrt(n ln n) sample-size regime (O(l) per round).
#include <benchmark/benchmark.h>

#include "core/init.h"
#include "core/stateful.h"
#include "engine/agent.h"
#include "engine/aggregate.h"
#include "engine/kernel/kernel.h"
#include "engine/sequential.h"
#include "engine/sharded.h"
#include "profile/pmu.h"
#include "protocols/minority.h"
#include "protocols/three_majority.h"
#include "protocols/voter.h"
#include "sim/parallel.h"

namespace bitspread {
namespace {

void BM_AggregateStepVoter(benchmark::State& state) {
  const VoterDynamics voter;
  const AggregateParallelEngine engine(voter);
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  Rng rng(1);
  Configuration config = init_half(n, Opinion::kOne);
  for (auto _ : state) {
    config = engine.step(config, rng);
    benchmark::DoNotOptimize(config.ones);
    // Keep the state away from absorption so every step does real work.
    if (config.is_consensus()) config = init_half(n, Opinion::kOne);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AggregateStepVoter)->Arg(1 << 10)->Arg(1 << 20)->Arg(1 << 30);

void BM_AggregateStepMinority3(benchmark::State& state) {
  const MinorityDynamics minority(3);
  const AggregateParallelEngine engine(minority);
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  Rng rng(2);
  Configuration config = init_half(n, Opinion::kOne);
  for (auto _ : state) {
    config = engine.step(config, rng);
    benchmark::DoNotOptimize(config.ones);
    if (config.is_consensus()) config = init_half(n, Opinion::kOne);
  }
}
BENCHMARK(BM_AggregateStepMinority3)->Arg(1 << 10)->Arg(1 << 20)->Arg(1 << 30);

void BM_AggregateStepMinoritySqrt(benchmark::State& state) {
  const MinorityDynamics minority(SampleSizePolicy::sqrt_n_log_n());
  const AggregateParallelEngine engine(minority);
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  Rng rng(3);
  Configuration config = init_half(n, Opinion::kOne);
  for (auto _ : state) {
    config = engine.step(config, rng);
    benchmark::DoNotOptimize(config.ones);
    if (config.is_consensus()) config = init_half(n, Opinion::kOne);
  }
  state.counters["l"] = minority.sample_size(n);
}
BENCHMARK(BM_AggregateStepMinoritySqrt)->Arg(1 << 14)->Arg(1 << 20);

void BM_AgentStepMinority3(benchmark::State& state) {
  const MinorityDynamics minority(3);
  const MemorylessAsStateful adapter(minority);
  const AgentParallelEngine engine(adapter);
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  Rng rng(4);
  auto population = engine.make_population(init_half(n, Opinion::kOne));
  for (auto _ : state) {
    engine.step(population, rng);
    benchmark::DoNotOptimize(population.views.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AgentStepMinority3)->Arg(1 << 10)->Arg(1 << 14);

// Sharded engine, serial schedule: same workload as BM_AgentStepMinority3 so
// the packed-plane + g-table speedup is read off directly.
void BM_ShardedStepMinority3(benchmark::State& state) {
  const MinorityDynamics minority(3);
  const ShardedAgentEngine engine(minority, {.threads = 1});
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  const SeedSequence seeds(4);
  auto population = engine.make_population(init_half(n, Opinion::kOne));
  std::uint64_t round = 0;
  for (auto _ : state) {
    engine.step(population, round++, seeds);
    benchmark::DoNotOptimize(population.count_ones());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ShardedStepMinority3)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 20);

// Per-kernel-backend rows on the same workload as BM_ShardedStepMinority3:
// the legacy per-agent loop vs the portable scalar-word bitslice kernel vs
// the SIMD backends. The label reports the backend that actually ran, so on
// a host without AVX2/NEON the avx2/neon rows show their scalar fallback.
void BM_ShardedStepKernelBackend(benchmark::State& state,
                                 kernel::Backend backend) {
  const MinorityDynamics minority(3);
  const ShardedAgentEngine engine(minority,
                                  {.threads = 1, .kernel = backend});
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  const SeedSequence seeds(4);
  auto population = engine.make_population(init_half(n, Opinion::kOne));
  state.SetLabel(kernel::backend_name(engine.step_backend(population)));
  std::uint64_t round = 0;
  for (auto _ : state) {
    engine.step(population, round++, seeds);
    benchmark::DoNotOptimize(population.count_ones());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  // Profiling provenance (kept on the kernel rows HISTORY.jsonl compares):
  // whether this host granted hardware counters, and whether the build
  // compiled the gather/decide/fault/commit sub-phase markers in.
  state.counters["pmu_available"] =
      profile::thread_counters().available() ? 1.0 : 0.0;
  state.counters["subphase_markers"] = telemetry::kCompiledIn ? 1.0 : 0.0;
}
BENCHMARK_CAPTURE(BM_ShardedStepKernelBackend, legacy,
                  kernel::Backend::kLegacy)
    ->Arg(1 << 14)
    ->Arg(1 << 17);
BENCHMARK_CAPTURE(BM_ShardedStepKernelBackend, scalar,
                  kernel::Backend::kScalarWord)
    ->Arg(1 << 14)
    ->Arg(1 << 17);
BENCHMARK_CAPTURE(BM_ShardedStepKernelBackend, avx2, kernel::Backend::kAvx2)
    ->Arg(1 << 14)
    ->Arg(1 << 17);
BENCHMARK_CAPTURE(BM_ShardedStepKernelBackend, neon, kernel::Backend::kNeon)
    ->Arg(1 << 14)
    ->Arg(1 << 17);

// Multi-thread scaling of the kernel path at the acceptance workload size:
// sharded_step_threadsN in the perf-trajectory reports.
void BM_ShardedStepThreadsN(benchmark::State& state) {
  const MinorityDynamics minority(3);
  const ShardedAgentEngine engine(
      minority, {.threads = static_cast<unsigned>(state.range(0))});
  const std::uint64_t n = 1 << 17;
  const SeedSequence seeds(4);
  auto population = engine.make_population(init_half(n, Opinion::kOne));
  std::uint64_t round = 0;
  for (auto _ : state) {
    engine.step(population, round++, seeds);
    benchmark::DoNotOptimize(population.count_ones());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.counters["threads"] = static_cast<double>(
      planned_workers(static_cast<int>(n / ShardedAgentEngine::kBlockAgents),
                      static_cast<unsigned>(state.range(0))));
}
BENCHMARK(BM_ShardedStepThreadsN)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(0)  // 0 = host concurrency
    ->UseRealTime();

// Sharded engine with a worker pool: bit-identical to the serial schedule by
// construction, so this row measures pure scheduling overhead/speedup.
void BM_ShardedStepMinority3MT(benchmark::State& state) {
  const MinorityDynamics minority(3);
  const ShardedAgentEngine engine(
      minority, {.threads = static_cast<unsigned>(state.range(1))});
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  const SeedSequence seeds(4);
  auto population = engine.make_population(init_half(n, Opinion::kOne));
  std::uint64_t round = 0;
  for (auto _ : state) {
    engine.step(population, round++, seeds);
    benchmark::DoNotOptimize(population.count_ones());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.counters["threads"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_ShardedStepMinority3MT)
    ->Args({1 << 20, 0})   // 0 = hardware concurrency
    ->Args({1 << 20, 2})
    ->Args({1 << 20, 4})
    ->UseRealTime();  // Work happens on pool workers; wall time is the truth.

// Without-replacement sampling past the old l <= 64 cap: Floyd's O(l)
// subset draws on the packed plane.
void BM_ShardedStepWithoutReplacement(benchmark::State& state) {
  const MinorityDynamics minority(
      static_cast<std::uint32_t>(state.range(1)));
  const ShardedAgentEngine engine(
      minority, {.threads = 1,
                 .sampling = ShardedAgentEngine::Sampling::kWithoutReplacement});
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  const SeedSequence seeds(5);
  auto population = engine.make_population(init_half(n, Opinion::kOne));
  std::uint64_t round = 0;
  for (auto _ : state) {
    engine.step(population, round++, seeds);
    benchmark::DoNotOptimize(population.count_ones());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.counters["l"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_ShardedStepWithoutReplacement)
    ->Args({1 << 14, 3})
    ->Args({1 << 14, 101})
    ->Args({1 << 14, 1001});

void BM_SequentialActivation(benchmark::State& state) {
  const MinorityDynamics minority(3);
  const SequentialEngine engine(minority);
  const std::uint64_t n = 1 << 20;
  Rng rng(5);
  Configuration config = init_half(n, Opinion::kOne);
  for (auto _ : state) {
    config = engine.step(config, rng);
    benchmark::DoNotOptimize(config.ones);
  }
}
BENCHMARK(BM_SequentialActivation);

// Ablation: closed-form aggregate adoption vs the generic Eq. 4 walk.
void BM_AdoptionClosedFormMinority(benchmark::State& state) {
  const MinorityDynamics minority(
      static_cast<std::uint32_t>(state.range(0)));
  double p = 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        minority.aggregate_adoption(Opinion::kZero, p, 1 << 20));
    p = p < 0.7 ? p + 1e-6 : 0.3;  // Defeat value caching.
  }
}
BENCHMARK(BM_AdoptionClosedFormMinority)->Arg(3)->Arg(63)->Arg(1023);

void BM_AdoptionGenericSumMinority(benchmark::State& state) {
  const MinorityDynamics minority(
      static_cast<std::uint32_t>(state.range(0)));
  double p = 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        eq4_adoption_sum(minority, Opinion::kZero, p, 1 << 20));
    p = p < 0.7 ? p + 1e-6 : 0.3;
  }
}
BENCHMARK(BM_AdoptionGenericSumMinority)->Arg(3)->Arg(63)->Arg(1023);

void BM_AdoptionClosedFormVoter(benchmark::State& state) {
  const VoterDynamics voter(8);
  double p = 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        voter.aggregate_adoption(Opinion::kZero, p, 1 << 20));
    p = p < 0.7 ? p + 1e-6 : 0.3;
  }
}
BENCHMARK(BM_AdoptionClosedFormVoter);

void BM_AdoptionGenericSumVoter(benchmark::State& state) {
  const VoterDynamics voter(8);
  double p = 0.3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(eq4_adoption_sum(voter, Opinion::kZero, p, 1 << 20));
    p = p < 0.7 ? p + 1e-6 : 0.3;
  }
}
BENCHMARK(BM_AdoptionGenericSumVoter);

}  // namespace
}  // namespace bitspread
