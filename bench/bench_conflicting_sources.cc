// E15 — §1.3: the majority-bit-dissemination variant, where sources
// conflict. Korman & Vacus (2022) proved this problem IMPOSSIBLE with
// passive communication; this bench shows the face of that impossibility:
// no consensus state even exists while both camps are non-empty, and the
// free population merely *tracks* the majority camp with a quality that
// depends on the protocol and the imbalance — it never stabilizes.
//
// Series: for each protocol and stubborn imbalance ratio, the fraction of
// rounds where the free majority agrees with the majority preference and
// the fraction of rounds with >= 90% alignment.
#include <cstdio>
#include <iostream>
#include <vector>

#include "engine/conflicting.h"
#include "protocols/majority.h"
#include "protocols/minority.h"
#include "protocols/voter.h"
#include "random/seeding.h"
#include "sim/cli.h"
#include "sim/table.h"

namespace bitspread {
namespace {

void run(const BenchOptions& options) {
  print_banner("E15",
               "conflicting sources (majority bit-dissemination): no "
               "stabilization, only tracking",
               options);

  const std::uint64_t n = options.quick ? (1 << 12) : (1 << 14);
  const std::uint64_t rounds = options.quick ? 20000 : 100000;
  const std::uint64_t stubborn_total = n / 50;  // 2% stubborn agents.
  const SeedSequence seeds(options.seed);

  const VoterDynamics voter;
  const MinorityDynamics minority3(3);
  const MinorityDynamics minority_sqrt(SampleSizePolicy::sqrt_n_log_n());
  const MajorityDynamics majority5(5, MajorityDynamics::TieBreak::kKeepOwn);
  const std::vector<const MemorylessProtocol*> protocols{
      &voter, &minority3, &minority_sqrt, &majority5};

  Table table({"protocol", "stubborn 1s:0s", "P(track majority)",
               "P(>=90% aligned)", "final ones frac"});
  std::uint64_t cell = 0;
  for (const MemorylessProtocol* protocol : protocols) {
    const ConflictingAggregateEngine engine(*protocol);
    for (const double imbalance : {0.5, 0.6, 0.75, 0.9}) {
      const auto stubborn_ones =
          static_cast<std::uint64_t>(imbalance * stubborn_total);
      const std::uint64_t stubborn_zeros = stubborn_total - stubborn_ones;
      ConflictingConfiguration config{n, n / 2, stubborn_ones,
                                      stubborn_zeros};
      Rng rng = seeds.stream(cell++);
      const auto result = engine.watch(config, rounds, rng);
      table.add_row(
          {protocol->name(),
           Table::fmt(stubborn_ones) + ":" + Table::fmt(stubborn_zeros),
           Table::fmt(result.tracking_fraction, 3),
           Table::fmt(result.near_consensus_fraction, 3),
           Table::fmt(result.final_config.fraction_ones(), 3)});
    }
  }
  emit_table(table, options);
  std::printf(
      "\nNo cell ever reaches (or could reach) a consensus: with both camps "
      "non-empty the\nones-count is pinned inside (0, n) forever — the "
      "structural face of the\nimpossibility result for passive "
      "communication. Tracking quality varies: voter's\nmix leans with the "
      "camp imbalance; majority amplifies whichever side it started\nnear; "
      "minority with sqrt(n ln n) samples ironically *fights* the majority "
      "camp\n(its one-round overshoot flips the free population each "
      "round).\n");
}

}  // namespace
}  // namespace bitspread

int main(int argc, char** argv) {
  bitspread::run(bitspread::parse_bench_options(argc, argv));
  return 0;
}
