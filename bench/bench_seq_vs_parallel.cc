// E7 — The sequential/parallel dichotomy (§1 "Previous works"): the same
// protocol, two activation patterns, exponentially different behavior.
//
// Series regenerated (all times in PARALLEL-ROUND units, i.e. n activations
// = 1 round, the paper's normalization):
//   * Voter: sequential exact expectation (birth-death solve) and simulation
//     vs parallel simulation — both are ~n-ish; the sequential setting costs
//     roughly an extra log factor but no exponential gap (l is irrelevant,
//     matching [14]'s "l is not a critical parameter sequentially");
//   * Minority with l = sqrt(n ln n): parallel converges in polylog rounds,
//     sequential is censored even at a vastly larger budget — the
//     "power of synchronicity" in one table.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/init.h"
#include "engine/aggregate.h"
#include "random/seeding.h"
#include "engine/sequential.h"
#include "markov/birth_death.h"
#include "protocols/minority.h"
#include "protocols/voter.h"
#include "sim/cli.h"
#include "sim/experiment.h"
#include "sim/sweep.h"
#include "sim/table.h"

namespace bitspread {
namespace {

void run(const BenchOptions& options) {
  print_banner("E7", "sequential vs parallel: the exponential gap", options);

  const int max_exp = options.quick ? 9 : 11;
  const int reps = options.reps_or(options.quick ? 5 : 10);
  const auto grid = power_of_two_grid(6, max_exp);
  const SeedSequence seeds(options.seed);

  // Part 1: Voter — no meaningful gap (both settings are ~n).
  {
    const VoterDynamics voter;
    Table table({"n", "seq exact E[T]", "seq sim mean", "par sim mean",
                 "seq/par"});
    std::uint64_t cell = 0;
    for (const std::uint64_t n : grid) {
      const std::uint64_t x0 = n / 2;
      const BirthDeathChain chain(voter, n, Opinion::kOne);
      const double exact_activations =
          chain.expected_absorption_activations()[x0 - chain.min_state()];
      const double exact_rounds = exact_activations / static_cast<double>(n);

      const SequentialEngine seq_engine(voter);
      StopRule rule;
      rule.max_rounds = 1000000;
      const Configuration init{n, x0, Opinion::kOne};
      RunningStats seq_rounds;
      for (int rep = 0; rep < reps; ++rep) {
        Rng rng = seeds.stream(cell, rep, 0);
        const RunResult r = seq_engine.run(init, rule, rng);
        seq_rounds.add(r.parallel_rounds());
      }

      const AggregateParallelEngine par_engine(voter);
      const auto runner = [&](Rng& rng) {
        return par_engine.run(init, rule, rng);
      };
      const ConvergenceMeasurement par =
          measure_convergence(runner, seeds, cell, reps);
      ++cell;

      table.add_row({Table::fmt(n), Table::fmt(exact_rounds, 1),
                     Table::fmt(seq_rounds.mean(), 1),
                     Table::fmt(par.rounds.mean(), 1),
                     Table::fmt(seq_rounds.mean() /
                                    std::max(par.rounds.mean(), 1.0),
                                2)});
    }
    std::printf("voter, X0 = n/2, z = 1 (sequential exact from the "
                "birth-death solve):\n");
    table.print(std::cout);
    std::printf("\n");
  }

  // Part 2: Minority with l = sqrt(n ln n) — the exponential gap.
  {
    const MinorityDynamics minority(SampleSizePolicy::sqrt_n_log_n());
    Table table({"n", "l", "par mean T", "seq budget", "seq outcome"});
    std::uint64_t cell = 1000;
    for (const std::uint64_t n : grid) {
      const Configuration init = init_half(n, Opinion::kOne);
      const AggregateParallelEngine par_engine(minority);
      StopRule rule;
      rule.max_rounds = 100000;
      const auto runner = [&](Rng& rng) {
        return par_engine.run(init, rule, rng);
      };
      const ConvergenceMeasurement par =
          measure_convergence(runner, seeds, cell, reps);

      // Sequential: budget = 500x the parallel mean, still expected to fail.
      const SequentialEngine seq_engine(minority);
      StopRule seq_rule;
      seq_rule.max_rounds = static_cast<std::uint64_t>(
          500.0 * std::max(par.rounds.mean(), 1.0));
      int seq_converged = 0;
      RunningStats seq_rounds;
      for (int rep = 0; rep < reps; ++rep) {
        Rng rng = seeds.stream(cell, rep, 1);
        const RunResult r = seq_engine.run(init, seq_rule, rng);
        if (r.converged()) {
          ++seq_converged;
          seq_rounds.add(r.parallel_rounds());
        }
      }
      ++cell;
      table.add_row(
          {Table::fmt(n),
           Table::fmt(std::uint64_t{minority.sample_size(n)}),
           Table::fmt(par.rounds.mean(), 1), Table::fmt(seq_rule.max_rounds),
           seq_converged == 0
               ? "censored (0/" + std::to_string(reps) + ")"
               : Table::fmt(seq_rounds.mean(), 1) + " (" +
                     std::to_string(seq_converged) + "/" +
                     std::to_string(reps) + ")"});
    }
    std::printf("minority with l = sqrt(n ln n), X0 = n/2, z = 1:\n");
    emit_table(table, options);
  }
  std::printf(
      "\nVoter: sequential/parallel within a small constant of each other "
      "(no gap, and the\nexact birth-death expectation matches the "
      "simulation). Minority: parallel finishes in\npolylog rounds while "
      "sequential cannot finish 500x that budget — synchronous updates\nare "
      "what make the overshoot mechanism work (the [14] vs [15] "
      "dichotomy).\n");
}

}  // namespace
}  // namespace bitspread

int main(int argc, char** argv) {
  bitspread::run(bitspread::parse_bench_options(argc, argv));
  return 0;
}
