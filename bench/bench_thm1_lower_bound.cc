// E2 — Theorem 1 / Theorem 12: with constant sample size, EVERY memory-less
// protocol needs Omega(n^{1-eps}) rounds.
//
// For each protocol the bench replays §4.2's adversarial construction
// mechanically:
//   1. classify the bias F_n (zero-bias / Case 1 / Case 2) — this picks the
//      correct opinion z, the interval [a1, a3], and the start X_0;
//   2. run the chain and measure the INTERVAL-CROSSING time (first time X_t
//      escapes past a3*n upward, or below a1*n downward), capped at C*n
//      rounds;
//   3. compare the minimum observed crossing against the Theorem 6 floor
//      n^{1-eps}.
// Expected shape: zero-bias protocols (Voter) cross diffusively in Theta(n)
// rounds; strict Case 1/2 protocols (minority, 3-majority, 2-choice, random
// tables) never cross within the cap (censored >= C*n). Either way every
// cell respects the floor, and the crossing time for Voter scales with
// exponent ~1 — "almost-linear".
#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "analysis/bias.h"
#include "analysis/bounds.h"
#include "analysis/cases.h"
#include "engine/aggregate.h"
#include "random/seeding.h"
#include "protocols/custom.h"
#include "protocols/minority.h"
#include "protocols/three_majority.h"
#include "protocols/two_choice.h"
#include "protocols/voter.h"
#include "sim/cli.h"
#include "sim/experiment.h"
#include "sim/sweep.h"
#include "sim/table.h"
#include "stats/quantiles.h"
#include "stats/regression.h"
#include "telemetry/reporter.h"

namespace bitspread {
namespace {

// Theorem 6 holds "for n large enough" for every eps; at laptop-scale n the
// diffusive crossing constant (~0.07n for Voter) only clears the n^{1-eps}
// floor once n^eps > ~15, so we measure against eps = 0.5 (floor sqrt(n)).
constexpr double kEpsilon = 0.5;
constexpr double kCapFactor = 4.0;  // Cap: 4n rounds.

void run(const BenchOptions& options) {
  print_banner(
      "E2", "Theorem 1: constant-l protocols cross intervals in Omega(n^1-e)",
      options);

  const int max_exp = options.quick ? 13 : 16;
  const int reps = options.reps_or(options.quick ? 5 : 10);
  const auto grid = power_of_two_grid(10, max_exp);
  const SeedSequence seeds(options.seed);

  JsonReporter reporter("thm1_lower_bound");
  reporter.set_experiment("E2");
  reporter.set_seed(options.seed);
  reporter.set_quick(options.quick);
  reporter.set_workload("epsilon", JsonValue(kEpsilon));
  reporter.set_workload("cap_factor", JsonValue(kCapFactor));
  reporter.set_workload("n_max", JsonValue(grid.back()));
  reporter.set_workload("reps", JsonValue(std::int64_t{reps}));

  // The ledger shares the reporter's registry so the outcome counters land
  // in the JSON metrics block for free.
  MetricsRegistry registry;
  OutcomeLedger ledger(&registry);
  telemetry::PhaseStats phase_stats;
  telemetry::install_phase_sink(&phase_stats);
  // Flight recorder (--trace-out= / --stream-out=): records the slow-crossing
  // timeline this bench exists to study. Destroyed (and files written) after
  // the report.
  FlightRecorderScope flight_recorder(options.recorder);
  const std::uint64_t simulate_start_ns = telemetry::clock_now_ns();

  Rng proto_rng(seeds.derive("random-protocol"));
  const VoterDynamics voter;
  const MinorityDynamics minority3(3);
  const MinorityDynamics minority7(7);
  const ThreeMajorityDynamics three_majority;
  const TwoChoiceDynamics two_choice;
  const CustomProtocol random_proto = random_protocol(proto_rng, 4);
  const std::vector<const MemorylessProtocol*> protocols{
      &voter, &minority3, &minority7, &three_majority, &two_choice,
      &random_proto};

  Table table({"protocol", "case", "n", "floor n^0.5", "cap", "crossed",
               "min cross", "mean cross", "P(T<floor)", "floor ok"});
  bool all_respect_floor = true;
  std::vector<double> voter_ns, voter_means;
  std::uint64_t cell = 0;
  for (const MemorylessProtocol* protocol : protocols) {
    for (const std::uint64_t n : grid) {
      const CaseAnalysis analysis = classify_bias(*protocol, n);
      const double floor = theorem6_crossing_floor(n, kEpsilon);
      const AggregateParallelEngine engine(*protocol);

      StopRule rule;
      rule.max_rounds =
          static_cast<std::uint64_t>(kCapFactor * static_cast<double>(n));
      const auto bound = [n](double fraction) {
        return static_cast<std::uint64_t>(fraction * static_cast<double>(n));
      };
      if (analysis.upward) {
        rule.interval_hi = bound(analysis.a3);
      } else {
        rule.interval_lo = bound(analysis.a1);
      }
      const Configuration start{n, bound(analysis.x0_fraction),
                                analysis.slow_correct};
      // Streamed lines for this cell carry the exact Eq. 3 drift of the
      // protocol under test (quiescent between cells, so the swap is safe).
      flight_recorder.set_bias(
          [bias = BiasFunction(*protocol, n)](double x) { return bias(x); });
      const auto runner = [&](Rng& rng) {
        return engine.run(start, rule, rng);
      };
      // The diffusive (zero-bias) crossing time is heavy-tailed; use more
      // replicates there so the median/exponent fit is stable. Case 1/2
      // cells are censored anyway, so extra replicates would only burn time.
      const int cell_reps =
          analysis.bias_case == BiasCase::kZeroBias ? 8 * reps : reps;
      const ConvergenceMeasurement m =
          measure_crossing(runner, seeds, cell++, cell_reps);
      ledger.add(m);

      const double min_cross =
          m.converged > 0 ? m.rounds.min()
                          : static_cast<double>(rule.max_rounds);
      // Theorem 12 is a w.h.p. statement: crossings faster than the floor
      // happen with probability 1/n^Omega(1), so judge the FRACTION of fast
      // replicates, not the minimum.
      int below_floor = 0;
      for (const double t : m.round_samples) below_floor += t < floor;
      const double fast_fraction =
          static_cast<double>(below_floor) / cell_reps;
      const bool floor_ok = fast_fraction <= 0.15;
      all_respect_floor = all_respect_floor && floor_ok;
      table.add_row(
          {protocol->name(), to_string(analysis.bias_case), Table::fmt(n),
           Table::fmt(floor, 0), Table::fmt(rule.max_rounds),
           std::to_string(m.converged) + "/" + std::to_string(cell_reps),
           m.converged > 0 ? Table::fmt(min_cross, 0)
                           : (">" + Table::fmt(rule.max_rounds)),
           m.converged == cell_reps ? Table::fmt(m.rounds.mean(), 0)
                                    : "censored",
           Table::fmt(fast_fraction, 3), floor_ok ? "yes" : "NO"});

      if (protocol == &voter && m.converged == cell_reps) {
        voter_ns.push_back(static_cast<double>(n));
        voter_means.push_back(median(m.round_samples));
      }
    }
  }
  const double simulate_seconds =
      static_cast<double>(telemetry::clock_now_ns() - simulate_start_ns) *
      1e-9;
  telemetry::install_phase_sink(nullptr);
  emit_table(table, options);

  std::printf("\nall cells respect the n^{1-eps} floor: %s\n",
              all_respect_floor ? "YES" : "NO (investigate!)");
  reporter.set_extra("all_respect_floor", JsonValue(all_respect_floor));
  if (voter_ns.size() >= 2) {
    const LinearFit fit = loglog_fit(voter_ns, voter_means);
    std::printf(
        "voter (zero bias) crossing time ~ %.2f * n^%.3f (R^2 = %.3f): the "
        "diffusive\ncrossing is itself Theta(n) — the lower bound is tight "
        "up to sub-polynomial factors\n(Theorem 2). Strict Case 1/2 "
        "protocols are censored at the %gn cap: their true\ncrossing times "
        "are exponentially long (drift pushes them back).\n",
        std::exp(fit.intercept), fit.slope, fit.r_squared, kCapFactor);
    JsonValue voter_fit = JsonValue::object();
    voter_fit.set("constant", JsonValue(std::exp(fit.intercept)));
    voter_fit.set("exponent", JsonValue(fit.slope));
    voter_fit.set("r_squared", JsonValue(fit.r_squared));
    reporter.set_extra("voter_crossing_fit", std::move(voter_fit));
  }

  reporter.add_phase("simulate", simulate_seconds);
  reporter.add_phase_stats(phase_stats);
  if (flight_recorder.recorder() != nullptr) {
    reporter.set_flight_recorder(*flight_recorder.recorder());
  }
  reporter.set_metrics(registry.snapshot());
  reporter.add_table("interval_crossing", table);
  reporter.write_file(
      options.json_path.value_or("BENCH_thm1_lower_bound.json"));
}

}  // namespace
}  // namespace bitspread

int main(int argc, char** argv) {
  bitspread::run(bitspread::parse_bench_options(argc, argv));
  return 0;
}
