// E4 — The open question (§1, §5): what is the minimal sample size for which
// the minority dynamics converges in poly-logarithmic time?
//
// The paper proves l = O(1) is hopeless and cites l = sqrt(n ln n) as
// sufficient, noting that "simulations suggest that its convergence might be
// fast even when the sample size is qualitatively small". This bench IS that
// simulation, systematized: for each n, sweep l upward and record the
// convergence rate and time within a polylog budget, then report the
// empirical threshold l*(n) (smallest l with all replicates converging) and
// fit its growth exponent: l*(n) ~ n^beta. beta well below 1/2 supports the
// paper's suspicion that Theta(sqrt(n log n)) is not the true frontier.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <optional>
#include <vector>

#include "core/init.h"
#include "engine/aggregate.h"
#include "random/seeding.h"
#include "protocols/minority.h"
#include "sim/cli.h"
#include "sim/experiment.h"
#include "sim/sweep.h"
#include "sim/table.h"
#include "stats/regression.h"

namespace bitspread {
namespace {

void run(const BenchOptions& options) {
  print_banner("E4",
               "open question: minimal sample size for fast minority "
               "convergence",
               options);

  const std::vector<int> exps =
      options.quick ? std::vector<int>{12, 14} : std::vector<int>{12, 14, 16, 18};
  const int reps = options.reps_or(options.quick ? 8 : 16);
  const SeedSequence seeds(options.seed);

  Table table({"n", "l", "l/sqrt(n ln n)", "solved", "mean T", "budget"});
  std::vector<double> threshold_ns, thresholds;
  std::uint64_t cell = 0;
  for (const int exp : exps) {
    const std::uint64_t n = std::uint64_t{1} << exp;
    const double nd = static_cast<double>(n);
    const double sqrt_ref = std::sqrt(nd * std::log(nd));
    const double log2n = std::log2(nd);
    // Polylog budget: 20 * log2^2(n) rounds.
    StopRule rule;
    rule.max_rounds = static_cast<std::uint64_t>(20.0 * log2n * log2n);

    // l-grid: geometric from 3 up to just above sqrt(n ln n).
    std::vector<std::uint32_t> ells;
    for (double v = 3.0; v < 1.3 * sqrt_ref; v *= 1.6) {
      ells.push_back(static_cast<std::uint32_t>(v));
    }

    std::optional<std::uint32_t> threshold;
    for (const std::uint32_t ell : ells) {
      const MinorityDynamics protocol(ell);
      const AggregateParallelEngine engine(protocol);
      const Configuration init = init_all_wrong(n, Opinion::kOne);
      const auto runner = [&](Rng& rng) {
        return engine.run(init, rule, rng);
      };
      const ConvergenceMeasurement m =
          measure_convergence(runner, seeds, cell++, reps);
      table.add_row(
          {Table::fmt(n), Table::fmt(std::uint64_t{ell}),
           Table::fmt(static_cast<double>(ell) / sqrt_ref, 3),
           std::to_string(m.converged) + "/" + std::to_string(reps),
           m.converged > 0 ? Table::fmt(m.rounds.mean(), 1) : "-",
           Table::fmt(rule.max_rounds)});
      if (!threshold && m.converged == reps) threshold = ell;
    }
    if (threshold) {
      threshold_ns.push_back(nd);
      thresholds.push_back(static_cast<double>(*threshold));
    }
  }
  emit_table(table, options);

  std::printf("\nempirical thresholds l*(n) (smallest grid l with all "
              "replicates converging in the polylog budget):\n");
  for (std::size_t i = 0; i < thresholds.size(); ++i) {
    std::printf("  n = %8.0f : l* ~ %4.0f  (sqrt(n ln n) = %.0f, ratio %.3f)\n",
                threshold_ns[i], thresholds[i],
                std::sqrt(threshold_ns[i] * std::log(threshold_ns[i])),
                thresholds[i] /
                    std::sqrt(threshold_ns[i] * std::log(threshold_ns[i])));
  }
  if (thresholds.size() >= 2) {
    const LinearFit fit = loglog_fit(threshold_ns, thresholds);
    std::printf(
        "fit: l*(n) ~ %.2f * n^%.3f (R^2 = %.3f). An exponent well below "
        "0.5 backs the\npaper's remark that nothing pins Theta(sqrt(n log "
        "n)) as the true frontier\n(grid resolution: factor 1.6, so l* is "
        "an upper bracket of the transition).\n",
        std::exp(fit.intercept), fit.slope, fit.r_squared);
  }
}

}  // namespace
}  // namespace bitspread

int main(int argc, char** argv) {
  bitspread::run(bitspread::parse_bench_options(argc, argv));
  return 0;
}
