// Linked into every bench binary: benchmarks recorded from non-Release
// builds are misleading (results/ is the repo's perf record), so a debug
// build announces itself before any table is printed — and refuses to run
// when BITSPREAD_BENCH_STRICT=1 is set (e.g. by CI perf jobs).
//
// NDEBUG is the ground truth the compiler saw for THIS binary, which is
// exactly what matters; the google-benchmark library prints its own warning
// for its half of the equation.
#include <cstdio>
#include <cstdlib>

namespace {

[[gnu::constructor]] void warn_if_debug_build() {
#ifndef NDEBUG
  std::fprintf(stderr,
               "*** bitspread bench: this binary was compiled WITHOUT "
               "NDEBUG (non-Release build). ***\n"
               "*** Timings will be wrong; do not record them under "
               "results/. Use the `bench` preset: ***\n"
               "***   cmake --preset bench && cmake --build --preset bench "
               "***\n");
  const char* strict = std::getenv("BITSPREAD_BENCH_STRICT");
  if (strict != nullptr && strict[0] != '\0' && strict[0] != '0') {
    std::fprintf(stderr,
                 "*** BITSPREAD_BENCH_STRICT is set: refusing to run. ***\n");
    std::exit(2);
  }
#endif
}

}  // namespace
