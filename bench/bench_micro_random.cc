// E14 — randomness micro-benchmarks (google-benchmark).
//
// The binomial sampler is the aggregate engine's inner loop; this bench
// pins down the cost of each regime (BINV inversion vs BTRS rejection vs
// the p > 1/2 complement path) and the raw generator throughput.
#include <benchmark/benchmark.h>

#include <vector>

#include "random/alias.h"
#include "random/binomial.h"
#include "random/hypergeometric.h"
#include "random/rng.h"

namespace bitspread {
namespace {

void BM_Xoshiro(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng());
}
BENCHMARK(BM_Xoshiro);

void BM_NextDouble(benchmark::State& state) {
  Rng rng(2);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_double());
}
BENCHMARK(BM_NextDouble);

void BM_NextBelow(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next_below(1000003));
}
BENCHMARK(BM_NextBelow);

// Regimes: n*p small (BINV), n*p large (BTRS), complement path, n = 10^9.
void BM_Binomial(benchmark::State& state) {
  Rng rng(4);
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  const double p = static_cast<double>(state.range(1)) / 1000.0;
  for (auto _ : state) benchmark::DoNotOptimize(binomial(rng, n, p));
  state.SetLabel("n=" + std::to_string(n) + " p=" + std::to_string(p));
}
BENCHMARK(BM_Binomial)
    ->Args({100, 20})           // BINV: np = 2
    ->Args({100, 300})          // BTRS: np = 30
    ->Args({100, 980})          // complement -> BINV
    ->Args({1000000, 500})      // BTRS, large n
    ->Args({1000000000, 500})   // BTRS, n = 1e9
    ->Args({1000000000, 1});    // BINV via tiny p (np = 1e6 -> BTRS actually)

void BM_BinomialBinvDirect(benchmark::State& state) {
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(binomial_detail::binv(rng, 64, 0.1));
  }
}
BENCHMARK(BM_BinomialBinvDirect);

void BM_BinomialBtrsDirect(benchmark::State& state) {
  Rng rng(6);
  for (auto _ : state) {
    benchmark::DoNotOptimize(binomial_detail::btrs(rng, 64, 0.25));
  }
}
BENCHMARK(BM_BinomialBtrsDirect);

void BM_Hypergeometric(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(hypergeometric(rng, 10000, 3000, 50));
  }
}
BENCHMARK(BM_Hypergeometric);

void BM_AliasSample(benchmark::State& state) {
  Rng build_rng(8);
  std::vector<double> weights(static_cast<std::size_t>(state.range(0)));
  for (auto& w : weights) w = build_rng.next_double();
  const AliasTable table(weights);
  Rng rng(9);
  for (auto _ : state) benchmark::DoNotOptimize(table.sample(rng));
}
BENCHMARK(BM_AliasSample)->Arg(16)->Arg(4096);

void BM_BinomialPmfBuild(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(binomial_pmf(n, 0.37));
  }
}
BENCHMARK(BM_BinomialPmfBuild)->Arg(64)->Arg(1024);

}  // namespace
}  // namespace bitspread
