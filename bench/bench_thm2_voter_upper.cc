// E1 — Theorem 2: the Voter dynamics solves bit-dissemination in O(n log n)
// rounds w.h.p. (+ Figure 4: the backward coalescing-random-walk dual).
//
// Series regenerated:
//   (a) mean/median/p90 convergence time of Voter vs n, from the all-wrong
//       start, with the normalization T / (n ln n) which Theorem 2 predicts
//       to be bounded;
//   (b) the empirical scaling exponent alpha of T ~ c n^alpha (expect ~1,
//       the log factor shows up as a mildly drifting normalized column);
//   (c) the dual process of Appendix B: n coalescing random walks running
//       backward in time, absorbed at the source; Theorem 2's proof bounds
//       the voter convergence time by the dual's absorption time, and the
//       table shows the two track each other.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/init.h"
#include "engine/aggregate.h"
#include "random/seeding.h"
#include "protocols/voter.h"
#include "sim/cli.h"
#include "sim/experiment.h"
#include "sim/sweep.h"
#include "sim/table.h"
#include "stats/quantiles.h"
#include "stats/regression.h"

namespace bitspread {
namespace {

// Figure 4's dual: every agent hosts a walk; each round every walk not yet
// at the source moves to a fresh uniform agent (walks sharing a position
// coalesce, since they would use the same sample). Returns rounds until all
// walks sit on the source.
std::uint64_t dual_coalescence_time(std::uint64_t n, Rng& rng,
                                    std::uint64_t cap) {
  // Occupied non-source positions only: walks sharing a position have
  // coalesced, and a walk landing on the source is absorbed forever, so one
  // deduplicated position set fully describes the dual state.
  std::vector<std::uint64_t> positions;
  positions.reserve(n);
  for (std::uint64_t j = 1; j < n; ++j) positions.push_back(j);
  for (std::uint64_t round = 0; round < cap; ++round) {
    if (positions.empty()) return round;
    for (auto& p : positions) p = rng.next_below(n);
    std::sort(positions.begin(), positions.end());
    positions.erase(std::unique(positions.begin(), positions.end()),
                    positions.end());
    if (!positions.empty() && positions.front() == 0) {
      positions.erase(positions.begin());  // Absorbed at the source.
    }
  }
  return cap;
}

void run(const BenchOptions& options) {
  print_banner("E1", "Theorem 2: Voter solves bit-dissemination in O(n log n)",
               options);

  const int max_exp = options.quick ? 11 : 14;
  const int reps = options.reps_or(options.quick ? 5 : 15);
  const auto grid = power_of_two_grid(7, max_exp);
  const SeedSequence seeds(options.seed);
  const VoterDynamics voter;
  const AggregateParallelEngine engine(voter);

  Table table({"n", "reps", "mean T", "median", "p90", "T/(n ln n)",
               "dual mean", "dual/(n ln n)"});
  std::vector<double> ns, means;
  std::uint64_t cell = 0;
  for (const std::uint64_t n : grid) {
    const double n_log_n =
        static_cast<double>(n) * std::log(static_cast<double>(n));
    StopRule rule;
    rule.max_rounds = static_cast<std::uint64_t>(60.0 * n_log_n);
    const Configuration init = init_all_wrong(n, Opinion::kOne);
    const auto runner = [&](Rng& rng) { return engine.run(init, rule, rng); };
    const ConvergenceMeasurement m =
        measure_convergence(runner, seeds, cell, reps);

    RunningStats dual;
    for (int rep = 0; rep < reps; ++rep) {
      Rng rng = seeds.stream(cell, rep, /*phase=*/1);
      dual.add(static_cast<double>(
          dual_coalescence_time(n, rng, rule.max_rounds)));
    }
    ++cell;

    table.add_row({Table::fmt(n), std::to_string(m.converged),
                   Table::fmt(m.rounds.mean(), 1),
                   Table::fmt(median(m.round_samples), 1),
                   Table::fmt(quantile(m.round_samples, 0.9), 1),
                   Table::fmt(m.rounds.mean() / n_log_n, 3),
                   Table::fmt(dual.mean(), 1),
                   Table::fmt(dual.mean() / n_log_n, 3)});
    ns.push_back(static_cast<double>(n));
    means.push_back(m.rounds.mean());
  }
  emit_table(table, options);

  const LinearFit fit = loglog_fit(ns, means);
  std::printf(
      "\nfit: T(n) ~ %.2f * n^%.3f  (R^2 = %.4f); Theorem 2 predicts "
      "exponent 1 with a log factor,\nand T/(n ln n) bounded — compare the "
      "normalized columns, which stay O(1) while n grows %ux.\n",
      std::exp(fit.intercept), fit.slope, fit.r_squared,
      static_cast<unsigned>(grid.back() / grid.front()));
}

}  // namespace
}  // namespace bitspread

int main(int argc, char** argv) {
  bitspread::run(bitspread::parse_bench_options(argc, argv));
  return 0;
}
