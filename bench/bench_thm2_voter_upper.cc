// E1 — Theorem 2: the Voter dynamics solves bit-dissemination in O(n log n)
// rounds w.h.p. (+ Figure 4: the backward coalescing-random-walk dual).
//
// Series regenerated:
//   (a) mean/median/p90 convergence time of Voter vs n, from the all-wrong
//       start, with the normalization T / (n ln n) which Theorem 2 predicts
//       to be bounded;
//   (b) the empirical scaling exponent alpha of T ~ c n^alpha (expect ~1,
//       the log factor shows up as a mildly drifting normalized column);
//   (c) the dual process of Appendix B: n coalescing random walks running
//       backward in time, absorbed at the source; Theorem 2's proof bounds
//       the voter convergence time by the dual's absorption time, and the
//       table shows the two track each other.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "core/init.h"
#include "engine/aggregate.h"
#include "random/seeding.h"
#include "protocols/voter.h"
#include "sim/cli.h"
#include "sim/experiment.h"
#include "sim/sweep.h"
#include "sim/table.h"
#include "stats/quantiles.h"
#include "stats/regression.h"
#include "telemetry/reporter.h"

namespace bitspread {
namespace {

// Figure 4's dual: every agent hosts a walk; each round every walk not yet
// at the source moves to a fresh uniform agent (walks sharing a position
// coalesce, since they would use the same sample). Returns rounds until all
// walks sit on the source.
std::uint64_t dual_coalescence_time(std::uint64_t n, Rng& rng,
                                    std::uint64_t cap) {
  // Occupied non-source positions only: walks sharing a position have
  // coalesced, and a walk landing on the source is absorbed forever, so one
  // deduplicated position set fully describes the dual state.
  std::vector<std::uint64_t> positions;
  positions.reserve(n);
  for (std::uint64_t j = 1; j < n; ++j) positions.push_back(j);
  for (std::uint64_t round = 0; round < cap; ++round) {
    if (positions.empty()) return round;
    for (auto& p : positions) p = rng.next_below(n);
    std::sort(positions.begin(), positions.end());
    positions.erase(std::unique(positions.begin(), positions.end()),
                    positions.end());
    if (!positions.empty() && positions.front() == 0) {
      positions.erase(positions.begin());  // Absorbed at the source.
    }
  }
  return cap;
}

void run(const BenchOptions& options) {
  print_banner("E1", "Theorem 2: Voter solves bit-dissemination in O(n log n)",
               options);

  const int max_exp = options.quick ? 11 : 14;
  const int reps = options.reps_or(options.quick ? 5 : 15);
  const auto grid = power_of_two_grid(7, max_exp);
  const SeedSequence seeds(options.seed);
  const VoterDynamics voter;
  const AggregateParallelEngine engine(voter);

  JsonReporter reporter("thm2_voter_upper");
  reporter.set_experiment("E1");
  reporter.set_seed(options.seed);
  reporter.set_quick(options.quick);
  reporter.set_workload("protocol", JsonValue("voter"));
  reporter.set_workload("n_max", JsonValue(grid.back()));
  reporter.set_workload("reps", JsonValue(std::int64_t{reps}));

  MetricsRegistry registry;
  OutcomeLedger ledger(&registry);
  telemetry::PhaseStats phase_stats;
  telemetry::install_phase_sink(&phase_stats);
  FlightRecorderScope flight_recorder(options.recorder);

  Table table({"n", "reps", "mean T", "median", "p90", "T/(n ln n)",
               "dual mean", "dual/(n ln n)"});
  std::vector<double> ns, means;
  double simulate_seconds = 0.0, dual_seconds = 0.0;
  std::uint64_t cell = 0;
  for (const std::uint64_t n : grid) {
    const double n_log_n =
        static_cast<double>(n) * std::log(static_cast<double>(n));
    StopRule rule;
    rule.max_rounds = static_cast<std::uint64_t>(60.0 * n_log_n);
    const Configuration init = init_all_wrong(n, Opinion::kOne);
    const auto runner = [&](Rng& rng) { return engine.run(init, rule, rng); };
    const std::uint64_t simulate_start_ns = telemetry::clock_now_ns();
    const ConvergenceMeasurement m =
        measure_convergence(runner, seeds, cell, reps);
    simulate_seconds +=
        static_cast<double>(telemetry::clock_now_ns() - simulate_start_ns) *
        1e-9;
    ledger.add(m);

    RunningStats dual;
    const std::uint64_t dual_start_ns = telemetry::clock_now_ns();
    for (int rep = 0; rep < reps; ++rep) {
      Rng rng = seeds.stream(cell, rep, /*phase=*/1);
      dual.add(static_cast<double>(
          dual_coalescence_time(n, rng, rule.max_rounds)));
    }
    dual_seconds +=
        static_cast<double>(telemetry::clock_now_ns() - dual_start_ns) * 1e-9;
    ++cell;

    table.add_row({Table::fmt(n), std::to_string(m.converged),
                   Table::fmt(m.rounds.mean(), 1),
                   Table::fmt(median(m.round_samples), 1),
                   Table::fmt(quantile(m.round_samples, 0.9), 1),
                   Table::fmt(m.rounds.mean() / n_log_n, 3),
                   Table::fmt(dual.mean(), 1),
                   Table::fmt(dual.mean() / n_log_n, 3)});
    ns.push_back(static_cast<double>(n));
    means.push_back(m.rounds.mean());
  }
  telemetry::install_phase_sink(nullptr);
  emit_table(table, options);

  const LinearFit fit = loglog_fit(ns, means);
  std::printf(
      "\nfit: T(n) ~ %.2f * n^%.3f  (R^2 = %.4f); Theorem 2 predicts "
      "exponent 1 with a log factor,\nand T/(n ln n) bounded — compare the "
      "normalized columns, which stay O(1) while n grows %ux.\n",
      std::exp(fit.intercept), fit.slope, fit.r_squared,
      static_cast<unsigned>(grid.back() / grid.front()));

  JsonValue fit_json = JsonValue::object();
  fit_json.set("constant", JsonValue(std::exp(fit.intercept)));
  fit_json.set("exponent", JsonValue(fit.slope));
  fit_json.set("r_squared", JsonValue(fit.r_squared));
  reporter.set_extra("convergence_fit", std::move(fit_json));
  reporter.add_phase("simulate", simulate_seconds);
  reporter.add_phase("dual", dual_seconds);
  reporter.add_phase_stats(phase_stats);
  if (flight_recorder.recorder() != nullptr) {
    reporter.set_flight_recorder(*flight_recorder.recorder());
  }
  reporter.set_metrics(registry.snapshot());
  reporter.add_table("voter_convergence", table);
  reporter.write_file(
      options.json_path.value_or("BENCH_thm2_voter_upper.json"));
}

}  // namespace
}  // namespace bitspread

int main(int argc, char** argv) {
  bitspread::run(bitspread::parse_bench_options(argc, argv));
  return 0;
}
